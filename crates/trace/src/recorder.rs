//! The lock-free, preallocated span/event ring recorder.
//!
//! Writers take a slot index with one `fetch_add` on the head counter
//! and then **claim the slot exclusively** by compare-exchanging its
//! per-slot sequence counter (a seqlock) from even (idle) to odd:
//! recording never blocks, never allocates, and wraps over the oldest
//! events when the ring fills. Once the ring has wrapped, two threads
//! can map to the same slot; the loser of the claim race drops its
//! event (counted in [`Recorder::dropped`]) instead of interleaving
//! stores with the winner, so a slot only ever holds one writer's
//! fields. Readers ([`Recorder::events`]) run at flush/snapshot time
//! and skip any slot whose sequence is odd, unwritten, or changed
//! across the read — a torn or in-flight slot is dropped, never
//! misread.
//!
//! Names are `&'static str` (string literals at the instrumentation
//! sites), so the hot path stores a pointer pair and touches the
//! allocator exactly never.

use std::cell::Cell;
use std::fmt;
use std::sync::atomic::{fence, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// Which conceptual lane an event belongs to. The first four mirror
/// the paper's figure-9 trace lanes (and comm's `Stream`); the rest
/// cover the subsystems PR 10 instruments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Lane {
    /// Kernel work (the paper's GPU "compute stream").
    Compute = 0,
    /// Halo buffer packing/unpacking.
    Halo = 1,
    /// Host-device style copies.
    Copy = 2,
    /// Message send/receive/wait markers.
    Comm = 3,
    /// Collective rounds (allreduce/barrier/allgather).
    Coll = 4,
    /// Checkpoint stage/commit/restore.
    Ckpt = 5,
    /// Injected faults.
    Fault = 6,
    /// Transport frame traffic and heartbeats.
    Wire = 7,
}

impl Lane {
    /// Display label used by trace renderers (matches the labels the
    /// comm `Stream` has always printed for its four lanes).
    pub fn label(self) -> &'static str {
        match self {
            Lane::Compute => "GPU",
            Lane::Halo => "HALO",
            Lane::Copy => "COPY",
            Lane::Comm => "COMM",
            Lane::Coll => "COLL",
            Lane::Ckpt => "CKPT",
            Lane::Fault => "FAULT",
            Lane::Wire => "WIRE",
        }
    }

    pub fn from_u8(v: u8) -> Lane {
        match v {
            0 => Lane::Compute,
            1 => Lane::Halo,
            2 => Lane::Copy,
            3 => Lane::Comm,
            4 => Lane::Coll,
            5 => Lane::Ckpt,
            6 => Lane::Fault,
            _ => Lane::Wire,
        }
    }
}

/// Span (has duration) or instant marker (a point in time).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Kind {
    Span = 0,
    Instant = 1,
}

impl Kind {
    pub fn from_u8(v: u8) -> Kind {
        if v == 1 {
            Kind::Instant
        } else {
            Kind::Span
        }
    }
}

/// One recorded event, as read back out of the ring.
#[derive(Debug, Clone, Copy)]
pub struct EventRec {
    /// Instrumentation-site name (a string literal).
    pub name: &'static str,
    pub lane: Lane,
    pub kind: Kind,
    /// Small dense id of the recording thread (see [`current_tid`]).
    pub tid: u32,
    /// Monotonic nanoseconds since the recorder's epoch.
    pub start_ns: u64,
    /// End of the span (`== start_ns` for instants).
    pub end_ns: u64,
    /// Free payload word (bytes, tag, level — site-defined).
    pub arg: u64,
}

/// Measured anatomy of one split-phase halo exchange, in integer
/// nanoseconds — the recorder-native form of comm's `OverlapRecord`
/// (which is now a thin f64-seconds view over this).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OverlapRec {
    pub tag: u64,
    pub bytes_sent: u64,
    pub bytes_received: u64,
    pub pack_ns: u64,
    pub window_ns: u64,
    pub wire_wait_ns: u64,
    pub unpack_ns: u64,
}

/// One event slot: a seqlock sequence counter plus the event fields as
/// plain atomics. The sequence is 0 while the slot has never been
/// written, odd while exactly one writer (the claim-race winner) is
/// publishing, and a new even value once the fields are complete —
/// every field store happens inside an exclusively-owned odd window,
/// so a reader that validates the sequence sees one writer's
/// consistent record and otherwise skips the slot.
struct Slot {
    seq: AtomicU64,
    name_ptr: AtomicUsize,
    name_len: AtomicUsize,
    /// `lane | kind << 8 | tid << 32`.
    meta: AtomicU64,
    start_ns: AtomicU64,
    end_ns: AtomicU64,
    arg: AtomicU64,
}

impl Slot {
    fn new() -> Slot {
        Slot {
            seq: AtomicU64::new(0),
            name_ptr: AtomicUsize::new(0),
            name_len: AtomicUsize::new(0),
            meta: AtomicU64::new(0),
            start_ns: AtomicU64::new(0),
            end_ns: AtomicU64::new(0),
            arg: AtomicU64::new(0),
        }
    }
}

/// Overlap slot: seqlock + the seven `OverlapRec` words.
struct OSlot {
    seq: AtomicU64,
    vals: [AtomicU64; 7],
}

impl OSlot {
    fn new() -> OSlot {
        OSlot { seq: AtomicU64::new(0), vals: std::array::from_fn(|_| AtomicU64::new(0)) }
    }
}

/// Claim `seq` for writing: CAS from its current even (idle) value to
/// odd. Returns the claimed value to publish `+2` from, or `None` when
/// another wrapped writer owns the slot — the caller must then drop
/// its record rather than interleave stores with the owner.
fn claim(seq: &AtomicU64) -> Option<u64> {
    let s = seq.load(Ordering::Relaxed);
    if s & 1 == 1 || seq.compare_exchange(s, s + 1, Ordering::Relaxed, Ordering::Relaxed).is_err() {
        return None;
    }
    // Order the claim before the field stores for any reader that
    // observes them (paired with the acquire fence in the readers).
    fence(Ordering::Release);
    Some(s)
}

/// A preallocated, lock-free span/event ring plus an overlap-record
/// ring. All storage is allocated at construction; recording is
/// wait-free (one `fetch_add` + field stores) and allocation-free.
pub struct Recorder {
    epoch: Instant,
    slots: Box<[Slot]>,
    /// Total events ever recorded; the live window is the last
    /// `min(head, capacity)` of them.
    head: AtomicUsize,
    /// Events dropped because a wrapped writer lost the slot claim.
    lost: AtomicUsize,
    oslots: Box<[OSlot]>,
    ohead: AtomicUsize,
    /// Overlap records dropped on slot-claim contention.
    olost: AtomicUsize,
}

impl fmt::Debug for Recorder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Recorder")
            .field("capacity", &self.slots.len())
            .field("recorded", &self.head.load(Ordering::Relaxed))
            .field("overlap_capacity", &self.oslots.len())
            .field("overlaps", &self.ohead.load(Ordering::Relaxed))
            .finish()
    }
}

impl Recorder {
    /// A ring holding up to `capacity` events and `overlap_capacity`
    /// overlap records. Zero capacities build a recorder that drops
    /// everything (the disabled-timeline case) without allocating.
    pub fn new(capacity: usize, overlap_capacity: usize) -> Recorder {
        Recorder {
            epoch: Instant::now(),
            slots: (0..capacity).map(|_| Slot::new()).collect::<Vec<_>>().into_boxed_slice(),
            head: AtomicUsize::new(0),
            lost: AtomicUsize::new(0),
            oslots: (0..overlap_capacity)
                .map(|_| OSlot::new())
                .collect::<Vec<_>>()
                .into_boxed_slice(),
            ohead: AtomicUsize::new(0),
            olost: AtomicUsize::new(0),
        }
    }

    /// Monotonic nanoseconds since this recorder's construction.
    #[inline]
    pub fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Record one event (wait-free, allocation-free).
    pub fn record(&self, ev: EventRec) {
        if self.slots.is_empty() {
            return;
        }
        let i = self.head.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[i % self.slots.len()];
        let Some(s) = claim(&slot.seq) else {
            // A wrapped writer is publishing into the same slot; drop
            // this event rather than tear the winner's record.
            self.lost.fetch_add(1, Ordering::Relaxed);
            return;
        };
        slot.name_ptr.store(ev.name.as_ptr() as usize, Ordering::Relaxed);
        slot.name_len.store(ev.name.len(), Ordering::Relaxed);
        slot.meta.store(
            ev.lane as u64 | (ev.kind as u64) << 8 | (ev.tid as u64) << 32,
            Ordering::Relaxed,
        );
        slot.start_ns.store(ev.start_ns, Ordering::Relaxed);
        slot.end_ns.store(ev.end_ns, Ordering::Relaxed);
        slot.arg.store(ev.arg, Ordering::Relaxed);
        slot.seq.store(s + 2, Ordering::Release);
    }

    /// Open a span ending (and recording) when the guard drops.
    pub fn span(&self, name: &'static str, lane: Lane) -> SpanGuard<'_> {
        SpanGuard { rec: Some(self), name, lane, arg: 0, start_ns: self.now_ns() }
    }

    /// Record an instant marker.
    pub fn instant(&self, name: &'static str, lane: Lane, arg: u64) {
        let now = self.now_ns();
        self.record(EventRec {
            name,
            lane,
            kind: Kind::Instant,
            tid: current_tid(),
            start_ns: now,
            end_ns: now,
            arg,
        });
    }

    /// Record one halo-exchange overlap record (wait-free,
    /// allocation-free).
    pub fn add_overlap(&self, o: OverlapRec) {
        if self.oslots.is_empty() {
            return;
        }
        let i = self.ohead.fetch_add(1, Ordering::Relaxed);
        let slot = &self.oslots[i % self.oslots.len()];
        let Some(s) = claim(&slot.seq) else {
            self.olost.fetch_add(1, Ordering::Relaxed);
            return;
        };
        let words = [
            o.tag,
            o.bytes_sent,
            o.bytes_received,
            o.pack_ns,
            o.window_ns,
            o.wire_wait_ns,
            o.unpack_ns,
        ];
        for (dst, w) in slot.vals.iter().zip(words) {
            dst.store(w, Ordering::Relaxed);
        }
        slot.seq.store(s + 2, Ordering::Release);
    }

    /// Events recorded so far (total, including any the ring wrapped
    /// over).
    pub fn recorded(&self) -> usize {
        self.head.load(Ordering::Relaxed)
    }

    /// Events lost: wrapped over by the ring (capacity) plus dropped
    /// on slot-claim contention between wrapped writers.
    pub fn dropped(&self) -> usize {
        self.head.load(Ordering::Relaxed).saturating_sub(self.slots.len())
            + self.lost.load(Ordering::Relaxed)
    }

    /// Overlap records lost: wrapped over by the overlap ring plus
    /// dropped on slot-claim contention.
    pub fn overlaps_dropped(&self) -> usize {
        self.ohead.load(Ordering::Relaxed).saturating_sub(self.oslots.len())
            + self.olost.load(Ordering::Relaxed)
    }

    /// Snapshot of the live window, sorted by start time. Slots a
    /// concurrent writer is publishing into are skipped.
    pub fn events(&self) -> Vec<EventRec> {
        let head = self.head.load(Ordering::Acquire);
        let n = head.min(self.slots.len());
        let mut out = Vec::with_capacity(n);
        for slot in self.slots.iter().take(n) {
            let s0 = slot.seq.load(Ordering::Acquire);
            if s0 == 0 || s0 & 1 == 1 {
                // Never fully written, or a writer is mid-publish.
                continue;
            }
            let name_ptr = slot.name_ptr.load(Ordering::Relaxed) as *const u8;
            let name_len = slot.name_len.load(Ordering::Relaxed);
            let meta = slot.meta.load(Ordering::Relaxed);
            let start_ns = slot.start_ns.load(Ordering::Relaxed);
            let end_ns = slot.end_ns.load(Ordering::Relaxed);
            let arg = slot.arg.load(Ordering::Relaxed);
            fence(Ordering::Acquire);
            if slot.seq.load(Ordering::Relaxed) != s0 {
                continue;
            }
            // The pointer/length pair names a string literal ('static)
            // and was validated consistent by the sequence check: the
            // fields were published by exactly one writer (claims are
            // exclusive) and did not change across the read.
            let name = unsafe {
                std::str::from_utf8_unchecked(std::slice::from_raw_parts(name_ptr, name_len))
            };
            out.push(EventRec {
                name,
                lane: Lane::from_u8((meta & 0xFF) as u8),
                kind: Kind::from_u8(((meta >> 8) & 0xFF) as u8),
                tid: (meta >> 32) as u32,
                start_ns,
                end_ns,
                arg,
            });
        }
        out.sort_by_key(|e| (e.start_ns, e.end_ns));
        out
    }

    /// Snapshot of the overlap records, oldest first within the live
    /// window.
    pub fn overlaps(&self) -> Vec<OverlapRec> {
        let head = self.ohead.load(Ordering::Acquire);
        let n = head.min(self.oslots.len());
        let mut out = Vec::with_capacity(n);
        let start = if head > self.oslots.len() { head % self.oslots.len() } else { 0 };
        for k in 0..n {
            let slot = &self.oslots[(start + k) % self.oslots.len().max(1)];
            let s0 = slot.seq.load(Ordering::Acquire);
            if s0 == 0 || s0 & 1 == 1 {
                continue;
            }
            let w: [u64; 7] = std::array::from_fn(|j| slot.vals[j].load(Ordering::Relaxed));
            fence(Ordering::Acquire);
            if slot.seq.load(Ordering::Relaxed) != s0 {
                continue;
            }
            out.push(OverlapRec {
                tag: w[0],
                bytes_sent: w[1],
                bytes_received: w[2],
                pack_ns: w[3],
                window_ns: w[4],
                wire_wait_ns: w[5],
                unpack_ns: w[6],
            });
        }
        out
    }
}

/// RAII span guard: records `[creation, drop]` into its recorder; the
/// disabled guard (un-armed global path) does nothing and holds
/// nothing.
pub struct SpanGuard<'a> {
    rec: Option<&'a Recorder>,
    name: &'static str,
    lane: Lane,
    arg: u64,
    start_ns: u64,
}

impl SpanGuard<'_> {
    /// A guard that records nothing on drop.
    pub const fn disabled() -> SpanGuard<'static> {
        SpanGuard { rec: None, name: "", lane: Lane::Compute, arg: 0, start_ns: 0 }
    }

    /// Attach a payload word recorded with the span.
    pub fn set_arg(&mut self, arg: u64) {
        self.arg = arg;
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        if let Some(rec) = self.rec {
            let end_ns = rec.now_ns();
            rec.record(EventRec {
                name: self.name,
                lane: self.lane,
                kind: Kind::Span,
                tid: current_tid(),
                start_ns: self.start_ns,
                end_ns,
                arg: self.arg,
            });
        }
    }
}

static NEXT_TID: AtomicU32 = AtomicU32::new(1);
thread_local! {
    static TID: Cell<u32> = const { Cell::new(0) };
}

/// A small dense id for the current thread, assigned on first use
/// (allocation-free; `ThreadId` has no stable integer accessor).
#[inline]
pub fn current_tid() -> u32 {
    TID.with(|t| {
        let v = t.get();
        if v != 0 {
            v
        } else {
            let v = NEXT_TID.fetch_add(1, Ordering::Relaxed);
            t.set(v);
            v
        }
    })
}

static GLOBAL: OnceLock<Recorder> = OnceLock::new();

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(default)
}

/// The per-process (per-rank, under process-per-rank transports)
/// global recorder, built on first use with
/// `HPGMXP_TRACE_CAPACITY` events (default 65536).
pub fn global() -> &'static Recorder {
    GLOBAL.get_or_init(|| Recorder::new(env_usize("HPGMXP_TRACE_CAPACITY", 1 << 16), 1 << 12))
}

/// Open a span on the global recorder — a no-op guard (one atomic
/// load + branch) unless `HPGMXP_TRACE=spans`.
#[inline]
pub fn span(name: &'static str, lane: Lane) -> SpanGuard<'static> {
    if !crate::spans_armed() {
        return SpanGuard::disabled();
    }
    global().span(name, lane)
}

/// Record an instant marker on the global recorder when armed.
#[inline]
pub fn instant(name: &'static str, lane: Lane, arg: u64) {
    if crate::spans_armed() {
        global().instant(name, lane, arg);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_and_instants_roundtrip() {
        let rec = Recorder::new(64, 8);
        {
            let mut s = rec.span("work", Lane::Compute);
            s.set_arg(42);
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        rec.instant("marker", Lane::Fault, 7);
        let ev = rec.events();
        assert_eq!(ev.len(), 2);
        assert_eq!(ev[0].name, "work");
        assert_eq!(ev[0].kind, Kind::Span);
        assert_eq!(ev[0].arg, 42);
        assert!(ev[0].end_ns > ev[0].start_ns);
        assert_eq!(ev[1].name, "marker");
        assert_eq!(ev[1].kind, Kind::Instant);
        assert_eq!(ev[1].start_ns, ev[1].end_ns);
        assert!(ev.iter().all(|e| e.tid > 0));
    }

    #[test]
    fn ring_wraps_keeping_the_newest() {
        let rec = Recorder::new(4, 0);
        for i in 0..10u64 {
            rec.instant("e", Lane::Comm, i);
        }
        assert_eq!(rec.recorded(), 10);
        assert_eq!(rec.dropped(), 6);
        let ev = rec.events();
        assert_eq!(ev.len(), 4);
        let mut args: Vec<u64> = ev.iter().map(|e| e.arg).collect();
        args.sort_unstable();
        assert_eq!(args, vec![6, 7, 8, 9], "the newest four survive");
    }

    #[test]
    fn zero_capacity_drops_everything() {
        let rec = Recorder::new(0, 0);
        rec.instant("e", Lane::Comm, 1);
        rec.add_overlap(OverlapRec::default());
        assert!(rec.events().is_empty());
        assert!(rec.overlaps().is_empty());
    }

    #[test]
    fn overlap_ring_roundtrips_in_order() {
        let rec = Recorder::new(0, 4);
        for i in 0..6u64 {
            rec.add_overlap(OverlapRec { tag: i, ..Default::default() });
        }
        let got: Vec<u64> = rec.overlaps().iter().map(|o| o.tag).collect();
        assert_eq!(got, vec![2, 3, 4, 5], "oldest-first live window");
    }

    #[test]
    fn concurrent_recording_is_safe_and_lossless_without_wrap() {
        let rec = std::sync::Arc::new(Recorder::new(4096, 0));
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let rec = std::sync::Arc::clone(&rec);
                std::thread::spawn(move || {
                    for i in 0..512u64 {
                        rec.instant("c", Lane::Wire, (t as u64) << 32 | i);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(rec.events().len(), 2048);
        let tids: std::collections::HashSet<u32> = rec.events().iter().map(|e| e.tid).collect();
        assert_eq!(tids.len(), 4, "each thread got its own tid");
    }

    #[test]
    fn wrapped_concurrent_writers_never_publish_torn_slots() {
        // A tiny ring wrapped thousands of times by racing writers,
        // with a reader snapshotting throughout: every event read back
        // must be one of the writers' records verbatim (a torn slot
        // would surface as a name outside the set or a mismatched
        // name/arg pair), and the loss accounting must cover every
        // event that did not land.
        const NAMES: [&str; 4] = ["w", "xx", "yyy", "zzzz"];
        const PER_THREAD: usize = 20_000;
        let rec = std::sync::Arc::new(Recorder::new(8, 4));
        let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
        let reader = {
            let rec = std::sync::Arc::clone(&rec);
            let stop = std::sync::Arc::clone(&stop);
            std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    for e in rec.events() {
                        let t = (e.arg >> 32) as usize;
                        assert!(t < NAMES.len(), "arg from an unknown writer: {:#x}", e.arg);
                        assert_eq!(e.name, NAMES[t], "slot mixed two writers' fields");
                    }
                    for o in rec.overlaps() {
                        assert!((o.tag as usize) < NAMES.len());
                        assert_eq!(o.bytes_sent, o.tag + 1, "torn overlap slot");
                    }
                }
            })
        };
        let writers: Vec<_> = (0..NAMES.len())
            .map(|t| {
                let rec = std::sync::Arc::clone(&rec);
                std::thread::spawn(move || {
                    for i in 0..PER_THREAD as u64 {
                        rec.instant(NAMES[t], Lane::Wire, (t as u64) << 32 | i);
                        rec.add_overlap(OverlapRec {
                            tag: t as u64,
                            bytes_sent: t as u64 + 1,
                            ..Default::default()
                        });
                    }
                })
            })
            .collect();
        for w in writers {
            w.join().unwrap();
        }
        stop.store(true, Ordering::Relaxed);
        reader.join().unwrap();
        let total = NAMES.len() * PER_THREAD;
        assert_eq!(rec.recorded(), total);
        let readable = rec.events().len();
        assert!(readable <= 8);
        assert!(rec.dropped() >= total - readable, "loss accounting undercounts");
    }

    #[test]
    fn lane_labels_cover_all_variants() {
        for (v, label) in [
            (0, "GPU"),
            (1, "HALO"),
            (2, "COPY"),
            (3, "COMM"),
            (4, "COLL"),
            (5, "CKPT"),
            (6, "FAULT"),
            (7, "WIRE"),
        ] {
            assert_eq!(Lane::from_u8(v).label(), label);
        }
    }
}
