//! The lock-free, preallocated span/event ring recorder.
//!
//! Writers claim a slot with one `fetch_add` on the head counter and
//! publish fields through per-slot sequence counters (a seqlock):
//! recording never blocks, never allocates, and wraps over the oldest
//! events when the ring fills. Readers ([`Recorder::events`]) run at
//! flush/snapshot time and skip any slot a concurrent writer is
//! mid-publish in — a torn slot is dropped, never misread.
//!
//! Names are `&'static str` (string literals at the instrumentation
//! sites), so the hot path stores a pointer pair and touches the
//! allocator exactly never.

use std::cell::Cell;
use std::fmt;
use std::sync::atomic::{AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// Which conceptual lane an event belongs to. The first four mirror
/// the paper's figure-9 trace lanes (and comm's `Stream`); the rest
/// cover the subsystems PR 10 instruments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Lane {
    /// Kernel work (the paper's GPU "compute stream").
    Compute = 0,
    /// Halo buffer packing/unpacking.
    Halo = 1,
    /// Host-device style copies.
    Copy = 2,
    /// Message send/receive/wait markers.
    Comm = 3,
    /// Collective rounds (allreduce/barrier/allgather).
    Coll = 4,
    /// Checkpoint stage/commit/restore.
    Ckpt = 5,
    /// Injected faults.
    Fault = 6,
    /// Transport frame traffic and heartbeats.
    Wire = 7,
}

impl Lane {
    /// Display label used by trace renderers (matches the labels the
    /// comm `Stream` has always printed for its four lanes).
    pub fn label(self) -> &'static str {
        match self {
            Lane::Compute => "GPU",
            Lane::Halo => "HALO",
            Lane::Copy => "COPY",
            Lane::Comm => "COMM",
            Lane::Coll => "COLL",
            Lane::Ckpt => "CKPT",
            Lane::Fault => "FAULT",
            Lane::Wire => "WIRE",
        }
    }

    pub fn from_u8(v: u8) -> Lane {
        match v {
            0 => Lane::Compute,
            1 => Lane::Halo,
            2 => Lane::Copy,
            3 => Lane::Comm,
            4 => Lane::Coll,
            5 => Lane::Ckpt,
            6 => Lane::Fault,
            _ => Lane::Wire,
        }
    }
}

/// Span (has duration) or instant marker (a point in time).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Kind {
    Span = 0,
    Instant = 1,
}

impl Kind {
    pub fn from_u8(v: u8) -> Kind {
        if v == 1 {
            Kind::Instant
        } else {
            Kind::Span
        }
    }
}

/// One recorded event, as read back out of the ring.
#[derive(Debug, Clone, Copy)]
pub struct EventRec {
    /// Instrumentation-site name (a string literal).
    pub name: &'static str,
    pub lane: Lane,
    pub kind: Kind,
    /// Small dense id of the recording thread (see [`current_tid`]).
    pub tid: u32,
    /// Monotonic nanoseconds since the recorder's epoch.
    pub start_ns: u64,
    /// End of the span (`== start_ns` for instants).
    pub end_ns: u64,
    /// Free payload word (bytes, tag, level — site-defined).
    pub arg: u64,
}

/// Measured anatomy of one split-phase halo exchange, in integer
/// nanoseconds — the recorder-native form of comm's `OverlapRecord`
/// (which is now a thin f64-seconds view over this).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OverlapRec {
    pub tag: u64,
    pub bytes_sent: u64,
    pub bytes_received: u64,
    pub pack_ns: u64,
    pub window_ns: u64,
    pub wire_wait_ns: u64,
    pub unpack_ns: u64,
}

/// One event slot: a seqlock sequence counter plus the event fields as
/// plain atomics (every field is written relaxed inside the odd/even
/// seq window, so a reader that validates the sequence sees a
/// consistent record and a racing reader merely skips the slot).
struct Slot {
    seq: AtomicU32,
    name_ptr: AtomicUsize,
    name_len: AtomicUsize,
    /// `lane | kind << 8 | tid << 32`.
    meta: AtomicU64,
    start_ns: AtomicU64,
    end_ns: AtomicU64,
    arg: AtomicU64,
}

impl Slot {
    fn new() -> Slot {
        Slot {
            seq: AtomicU32::new(0),
            name_ptr: AtomicUsize::new(0),
            name_len: AtomicUsize::new(0),
            meta: AtomicU64::new(0),
            start_ns: AtomicU64::new(0),
            end_ns: AtomicU64::new(0),
            arg: AtomicU64::new(0),
        }
    }
}

/// Overlap slot: seqlock + the seven `OverlapRec` words.
struct OSlot {
    seq: AtomicU32,
    vals: [AtomicU64; 7],
}

impl OSlot {
    fn new() -> OSlot {
        OSlot { seq: AtomicU32::new(0), vals: std::array::from_fn(|_| AtomicU64::new(0)) }
    }
}

/// A preallocated, lock-free span/event ring plus an overlap-record
/// ring. All storage is allocated at construction; recording is
/// wait-free (one `fetch_add` + field stores) and allocation-free.
pub struct Recorder {
    epoch: Instant,
    slots: Box<[Slot]>,
    /// Total events ever recorded; the live window is the last
    /// `min(head, capacity)` of them.
    head: AtomicUsize,
    oslots: Box<[OSlot]>,
    ohead: AtomicUsize,
}

impl fmt::Debug for Recorder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Recorder")
            .field("capacity", &self.slots.len())
            .field("recorded", &self.head.load(Ordering::Relaxed))
            .field("overlap_capacity", &self.oslots.len())
            .field("overlaps", &self.ohead.load(Ordering::Relaxed))
            .finish()
    }
}

impl Recorder {
    /// A ring holding up to `capacity` events and `overlap_capacity`
    /// overlap records. Zero capacities build a recorder that drops
    /// everything (the disabled-timeline case) without allocating.
    pub fn new(capacity: usize, overlap_capacity: usize) -> Recorder {
        Recorder {
            epoch: Instant::now(),
            slots: (0..capacity).map(|_| Slot::new()).collect::<Vec<_>>().into_boxed_slice(),
            head: AtomicUsize::new(0),
            oslots: (0..overlap_capacity)
                .map(|_| OSlot::new())
                .collect::<Vec<_>>()
                .into_boxed_slice(),
            ohead: AtomicUsize::new(0),
        }
    }

    /// Monotonic nanoseconds since this recorder's construction.
    #[inline]
    pub fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Record one event (wait-free, allocation-free).
    pub fn record(&self, ev: EventRec) {
        if self.slots.is_empty() {
            return;
        }
        let i = self.head.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[i % self.slots.len()];
        slot.seq.fetch_add(1, Ordering::AcqRel);
        slot.name_ptr.store(ev.name.as_ptr() as usize, Ordering::Relaxed);
        slot.name_len.store(ev.name.len(), Ordering::Relaxed);
        slot.meta.store(
            ev.lane as u64 | (ev.kind as u64) << 8 | (ev.tid as u64) << 32,
            Ordering::Relaxed,
        );
        slot.start_ns.store(ev.start_ns, Ordering::Relaxed);
        slot.end_ns.store(ev.end_ns, Ordering::Relaxed);
        slot.arg.store(ev.arg, Ordering::Relaxed);
        slot.seq.fetch_add(1, Ordering::Release);
    }

    /// Open a span ending (and recording) when the guard drops.
    pub fn span(&self, name: &'static str, lane: Lane) -> SpanGuard<'_> {
        SpanGuard { rec: Some(self), name, lane, arg: 0, start_ns: self.now_ns() }
    }

    /// Record an instant marker.
    pub fn instant(&self, name: &'static str, lane: Lane, arg: u64) {
        let now = self.now_ns();
        self.record(EventRec {
            name,
            lane,
            kind: Kind::Instant,
            tid: current_tid(),
            start_ns: now,
            end_ns: now,
            arg,
        });
    }

    /// Record one halo-exchange overlap record (wait-free,
    /// allocation-free).
    pub fn add_overlap(&self, o: OverlapRec) {
        if self.oslots.is_empty() {
            return;
        }
        let i = self.ohead.fetch_add(1, Ordering::Relaxed);
        let slot = &self.oslots[i % self.oslots.len()];
        slot.seq.fetch_add(1, Ordering::AcqRel);
        let words = [
            o.tag,
            o.bytes_sent,
            o.bytes_received,
            o.pack_ns,
            o.window_ns,
            o.wire_wait_ns,
            o.unpack_ns,
        ];
        for (dst, w) in slot.vals.iter().zip(words) {
            dst.store(w, Ordering::Relaxed);
        }
        slot.seq.fetch_add(1, Ordering::Release);
    }

    /// Events recorded so far (total, including any the ring wrapped
    /// over).
    pub fn recorded(&self) -> usize {
        self.head.load(Ordering::Relaxed)
    }

    /// Events the ring wrapped over (lost to capacity).
    pub fn dropped(&self) -> usize {
        self.head.load(Ordering::Relaxed).saturating_sub(self.slots.len())
    }

    /// Snapshot of the live window, sorted by start time. Slots a
    /// concurrent writer is publishing into are skipped.
    pub fn events(&self) -> Vec<EventRec> {
        let head = self.head.load(Ordering::Acquire);
        let n = head.min(self.slots.len());
        let mut out = Vec::with_capacity(n);
        for slot in self.slots.iter().take(n) {
            let s0 = slot.seq.load(Ordering::Acquire);
            if s0 & 1 == 1 {
                continue;
            }
            let name_ptr = slot.name_ptr.load(Ordering::Relaxed) as *const u8;
            let name_len = slot.name_len.load(Ordering::Relaxed);
            let meta = slot.meta.load(Ordering::Relaxed);
            let start_ns = slot.start_ns.load(Ordering::Relaxed);
            let end_ns = slot.end_ns.load(Ordering::Relaxed);
            let arg = slot.arg.load(Ordering::Relaxed);
            if slot.seq.load(Ordering::Acquire) != s0 {
                continue;
            }
            // The pointer/length pair names a string literal ('static)
            // and was validated consistent by the sequence check.
            let name = unsafe {
                std::str::from_utf8_unchecked(std::slice::from_raw_parts(name_ptr, name_len))
            };
            out.push(EventRec {
                name,
                lane: Lane::from_u8((meta & 0xFF) as u8),
                kind: Kind::from_u8(((meta >> 8) & 0xFF) as u8),
                tid: (meta >> 32) as u32,
                start_ns,
                end_ns,
                arg,
            });
        }
        out.sort_by_key(|e| (e.start_ns, e.end_ns));
        out
    }

    /// Snapshot of the overlap records, oldest first within the live
    /// window.
    pub fn overlaps(&self) -> Vec<OverlapRec> {
        let head = self.ohead.load(Ordering::Acquire);
        let n = head.min(self.oslots.len());
        let mut out = Vec::with_capacity(n);
        let start = if head > self.oslots.len() { head % self.oslots.len() } else { 0 };
        for k in 0..n {
            let slot = &self.oslots[(start + k) % self.oslots.len().max(1)];
            let s0 = slot.seq.load(Ordering::Acquire);
            if s0 & 1 == 1 {
                continue;
            }
            let w: [u64; 7] = std::array::from_fn(|j| slot.vals[j].load(Ordering::Relaxed));
            if slot.seq.load(Ordering::Acquire) != s0 {
                continue;
            }
            out.push(OverlapRec {
                tag: w[0],
                bytes_sent: w[1],
                bytes_received: w[2],
                pack_ns: w[3],
                window_ns: w[4],
                wire_wait_ns: w[5],
                unpack_ns: w[6],
            });
        }
        out
    }
}

/// RAII span guard: records `[creation, drop]` into its recorder; the
/// disabled guard (un-armed global path) does nothing and holds
/// nothing.
pub struct SpanGuard<'a> {
    rec: Option<&'a Recorder>,
    name: &'static str,
    lane: Lane,
    arg: u64,
    start_ns: u64,
}

impl SpanGuard<'_> {
    /// A guard that records nothing on drop.
    pub const fn disabled() -> SpanGuard<'static> {
        SpanGuard { rec: None, name: "", lane: Lane::Compute, arg: 0, start_ns: 0 }
    }

    /// Attach a payload word recorded with the span.
    pub fn set_arg(&mut self, arg: u64) {
        self.arg = arg;
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        if let Some(rec) = self.rec {
            let end_ns = rec.now_ns();
            rec.record(EventRec {
                name: self.name,
                lane: self.lane,
                kind: Kind::Span,
                tid: current_tid(),
                start_ns: self.start_ns,
                end_ns,
                arg: self.arg,
            });
        }
    }
}

static NEXT_TID: AtomicU32 = AtomicU32::new(1);
thread_local! {
    static TID: Cell<u32> = const { Cell::new(0) };
}

/// A small dense id for the current thread, assigned on first use
/// (allocation-free; `ThreadId` has no stable integer accessor).
#[inline]
pub fn current_tid() -> u32 {
    TID.with(|t| {
        let v = t.get();
        if v != 0 {
            v
        } else {
            let v = NEXT_TID.fetch_add(1, Ordering::Relaxed);
            t.set(v);
            v
        }
    })
}

static GLOBAL: OnceLock<Recorder> = OnceLock::new();

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(default)
}

/// The per-process (per-rank, under process-per-rank transports)
/// global recorder, built on first use with
/// `HPGMXP_TRACE_CAPACITY` events (default 65536).
pub fn global() -> &'static Recorder {
    GLOBAL.get_or_init(|| Recorder::new(env_usize("HPGMXP_TRACE_CAPACITY", 1 << 16), 1 << 12))
}

/// Open a span on the global recorder — a no-op guard (one atomic
/// load + branch) unless `HPGMXP_TRACE=spans`.
#[inline]
pub fn span(name: &'static str, lane: Lane) -> SpanGuard<'static> {
    if !crate::spans_armed() {
        return SpanGuard::disabled();
    }
    global().span(name, lane)
}

/// Record an instant marker on the global recorder when armed.
#[inline]
pub fn instant(name: &'static str, lane: Lane, arg: u64) {
    if crate::spans_armed() {
        global().instant(name, lane, arg);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_and_instants_roundtrip() {
        let rec = Recorder::new(64, 8);
        {
            let mut s = rec.span("work", Lane::Compute);
            s.set_arg(42);
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        rec.instant("marker", Lane::Fault, 7);
        let ev = rec.events();
        assert_eq!(ev.len(), 2);
        assert_eq!(ev[0].name, "work");
        assert_eq!(ev[0].kind, Kind::Span);
        assert_eq!(ev[0].arg, 42);
        assert!(ev[0].end_ns > ev[0].start_ns);
        assert_eq!(ev[1].name, "marker");
        assert_eq!(ev[1].kind, Kind::Instant);
        assert_eq!(ev[1].start_ns, ev[1].end_ns);
        assert!(ev.iter().all(|e| e.tid > 0));
    }

    #[test]
    fn ring_wraps_keeping_the_newest() {
        let rec = Recorder::new(4, 0);
        for i in 0..10u64 {
            rec.instant("e", Lane::Comm, i);
        }
        assert_eq!(rec.recorded(), 10);
        assert_eq!(rec.dropped(), 6);
        let ev = rec.events();
        assert_eq!(ev.len(), 4);
        let mut args: Vec<u64> = ev.iter().map(|e| e.arg).collect();
        args.sort_unstable();
        assert_eq!(args, vec![6, 7, 8, 9], "the newest four survive");
    }

    #[test]
    fn zero_capacity_drops_everything() {
        let rec = Recorder::new(0, 0);
        rec.instant("e", Lane::Comm, 1);
        rec.add_overlap(OverlapRec::default());
        assert!(rec.events().is_empty());
        assert!(rec.overlaps().is_empty());
    }

    #[test]
    fn overlap_ring_roundtrips_in_order() {
        let rec = Recorder::new(0, 4);
        for i in 0..6u64 {
            rec.add_overlap(OverlapRec { tag: i, ..Default::default() });
        }
        let got: Vec<u64> = rec.overlaps().iter().map(|o| o.tag).collect();
        assert_eq!(got, vec![2, 3, 4, 5], "oldest-first live window");
    }

    #[test]
    fn concurrent_recording_is_safe_and_lossless_without_wrap() {
        let rec = std::sync::Arc::new(Recorder::new(4096, 0));
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let rec = std::sync::Arc::clone(&rec);
                std::thread::spawn(move || {
                    for i in 0..512u64 {
                        rec.instant("c", Lane::Wire, (t as u64) << 32 | i);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(rec.events().len(), 2048);
        let tids: std::collections::HashSet<u32> = rec.events().iter().map(|e| e.tid).collect();
        assert_eq!(tids.len(), 4, "each thread got its own tid");
    }

    #[test]
    fn lane_labels_cover_all_variants() {
        for (v, label) in [
            (0, "GPU"),
            (1, "HALO"),
            (2, "COPY"),
            (3, "COMM"),
            (4, "COLL"),
            (5, "CKPT"),
            (6, "FAULT"),
            (7, "WIRE"),
        ] {
            assert_eq!(Lane::from_u8(v).label(), label);
        }
    }
}
