//! Merging per-rank trace files into Chrome trace-event JSON.
//!
//! The output is the classic `{"traceEvents": [...]}` document that
//! `chrome://tracing` and [Perfetto](https://ui.perfetto.dev) load
//! directly: each span becomes a balanced `"B"`/`"E"` duration pair
//! and each instant a `"i"` event, with `pid` = rank, `tid` = the
//! recorder's dense thread id, `ts` in microseconds, and `cat` = the
//! lane label. The document is built from serde structs (not string
//! pasting), so it round-trips through `serde_json` and stays valid
//! by construction.

use crate::file::TraceFile;
use crate::recorder::Kind;
use serde::{Deserialize, Serialize};

/// One Chrome trace event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChromeEvent {
    pub name: String,
    /// Lane label (GPU/HALO/COPY/COMM/COLL/CKPT/FAULT/WIRE).
    pub cat: String,
    /// `"B"` (begin), `"E"` (end), or `"i"` (instant).
    pub ph: String,
    /// Microseconds since the rank's epoch.
    pub ts: f64,
    /// Rank.
    pub pid: u64,
    /// Dense per-process thread id.
    pub tid: u64,
    /// The span's payload word.
    pub arg: u64,
}

/// The merged trace document.
#[allow(non_snake_case)]
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChromeTrace {
    pub traceEvents: Vec<ChromeEvent>,
    pub displayTimeUnit: String,
}

/// Merge per-rank trace files into one Chrome trace document. Events
/// are globally sorted by timestamp (stable, so each span's `"B"`
/// precedes its `"E"` even at zero duration).
pub fn merge(files: &[TraceFile]) -> ChromeTrace {
    let mut events: Vec<ChromeEvent> = Vec::new();
    for f in files {
        for ev in &f.events {
            let base = ChromeEvent {
                name: ev.name.clone(),
                cat: ev.lane.label().to_string(),
                ph: String::new(),
                ts: ev.start_ns as f64 / 1000.0,
                pid: f.rank as u64,
                tid: ev.tid as u64,
                arg: ev.arg,
            };
            match ev.kind {
                Kind::Instant => events.push(ChromeEvent { ph: "i".into(), ..base }),
                Kind::Span => {
                    events.push(ChromeEvent { ph: "B".into(), ..base.clone() });
                    events.push(ChromeEvent {
                        ph: "E".into(),
                        ts: ev.end_ns as f64 / 1000.0,
                        ..base
                    });
                }
            }
        }
    }
    events.sort_by(|a, b| a.ts.total_cmp(&b.ts));
    ChromeTrace { traceEvents: events, displayTimeUnit: "ms".to_string() }
}

/// Per-span-name aggregate over every rank, for the summary table.
#[derive(Debug, Clone)]
pub struct SpanSummary {
    pub name: String,
    pub lane: &'static str,
    pub count: u64,
    pub total_us: f64,
    pub max_us: f64,
}

/// Aggregate span statistics by name (instants count with zero
/// duration), sorted by total time, descending.
pub fn summarize(files: &[TraceFile]) -> Vec<SpanSummary> {
    let mut rows: Vec<SpanSummary> = Vec::new();
    for f in files {
        for ev in &f.events {
            let dur_us = ev.end_ns.saturating_sub(ev.start_ns) as f64 / 1000.0;
            match rows.iter_mut().find(|r| r.name == ev.name) {
                Some(r) => {
                    r.count += 1;
                    r.total_us += dur_us;
                    r.max_us = r.max_us.max(dur_us);
                }
                None => rows.push(SpanSummary {
                    name: ev.name.clone(),
                    lane: ev.lane.label(),
                    count: 1,
                    total_us: dur_us,
                    max_us: dur_us,
                }),
            }
        }
    }
    rows.sort_by(|a, b| b.total_us.total_cmp(&a.total_us));
    rows
}

/// Render the summary rows as an aligned text table.
pub fn summary_table(files: &[TraceFile]) -> String {
    use std::fmt::Write as _;
    let rows = summarize(files);
    let mut s = String::new();
    let ranks: Vec<u32> = files.iter().map(|f| f.rank).collect();
    let dropped: u64 = files.iter().map(|f| f.dropped).sum();
    let _ = writeln!(
        s,
        "== span summary over ranks {ranks:?} ({} events{}) ==",
        files.iter().map(|f| f.events.len()).sum::<usize>(),
        if dropped > 0 { format!(", {dropped} wrapped out of the ring") } else { String::new() }
    );
    let _ = writeln!(
        s,
        "{:<32} {:>5} {:>8} {:>12} {:>12} {:>12}",
        "span", "lane", "count", "total ms", "mean us", "max us"
    );
    for r in rows {
        let _ = writeln!(
            s,
            "{:<32} {:>5} {:>8} {:>12.3} {:>12.2} {:>12.2}",
            r.name,
            r.lane,
            r.count,
            r.total_us / 1000.0,
            r.total_us / r.count as f64,
            r.max_us
        );
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::file::FileEvent;
    use crate::metrics::MetricsSnapshot;
    use crate::recorder::Lane;

    fn demo_file(rank: u32) -> TraceFile {
        TraceFile {
            rank,
            events: vec![
                FileEvent {
                    name: "SpMV".into(),
                    lane: Lane::Compute,
                    kind: Kind::Span,
                    tid: 1,
                    start_ns: 1000,
                    end_ns: 5000,
                    arg: 0,
                },
                FileEvent {
                    name: "fault crash".into(),
                    lane: Lane::Fault,
                    kind: Kind::Instant,
                    tid: 1,
                    start_ns: 2000,
                    end_ns: 2000,
                    arg: 1,
                },
            ],
            overlaps: vec![],
            dropped: 0,
            metrics: MetricsSnapshot::default(),
        }
    }

    #[test]
    fn merge_balances_begin_end_and_tags_ranks() {
        let doc = merge(&[demo_file(0), demo_file(1)]);
        let b = doc.traceEvents.iter().filter(|e| e.ph == "B").count();
        let e = doc.traceEvents.iter().filter(|e| e.ph == "E").count();
        let i = doc.traceEvents.iter().filter(|e| e.ph == "i").count();
        assert_eq!((b, e, i), (2, 2, 2));
        assert!(doc.traceEvents.windows(2).all(|w| w[0].ts <= w[1].ts), "sorted by ts");
        let pids: std::collections::HashSet<u64> = doc.traceEvents.iter().map(|e| e.pid).collect();
        assert_eq!(pids.len(), 2);
        // Valid JSON by construction: it round-trips through serde.
        let json = serde_json::to_string(&doc).unwrap();
        let back: ChromeTrace = serde_json::from_str(&json).unwrap();
        assert_eq!(doc, back);
        assert!(json.contains("\"traceEvents\""));
    }

    #[test]
    fn summary_aggregates_by_name() {
        let rows = summarize(&[demo_file(0), demo_file(1)]);
        let spmv = rows.iter().find(|r| r.name == "SpMV").unwrap();
        assert_eq!(spmv.count, 2);
        assert!((spmv.total_us - 8.0).abs() < 1e-9);
        assert_eq!(spmv.lane, "GPU");
        let table = summary_table(&[demo_file(0)]);
        assert!(table.contains("SpMV"));
        assert!(table.contains("GPU"));
    }
}
