//! Merging per-rank trace files into Chrome trace-event JSON.
//!
//! The output is the classic `{"traceEvents": [...]}` document that
//! `chrome://tracing` and [Perfetto](https://ui.perfetto.dev) load
//! directly: each span becomes a balanced `"B"`/`"E"` duration pair
//! and each instant a `"i"` event, with `pid` = rank, `tid` = the
//! recorder's dense thread id, `ts` in microseconds, and `cat` = the
//! lane label. The document is built from serde structs (not string
//! pasting), so it round-trips through `serde_json` and stays valid
//! by construction.

use crate::file::TraceFile;
use crate::recorder::Kind;
use serde::{Deserialize, Serialize};

/// One Chrome trace event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChromeEvent {
    pub name: String,
    /// Lane label (GPU/HALO/COPY/COMM/COLL/CKPT/FAULT/WIRE).
    pub cat: String,
    /// `"B"` (begin), `"E"` (end), or `"i"` (instant).
    pub ph: String,
    /// Microseconds since the rank's epoch.
    pub ts: f64,
    /// Rank.
    pub pid: u64,
    /// Dense per-process thread id.
    pub tid: u64,
    /// The span's payload word.
    pub arg: u64,
}

/// The merged trace document.
#[allow(non_snake_case)]
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChromeTrace {
    pub traceEvents: Vec<ChromeEvent>,
    pub displayTimeUnit: String,
}

/// Merge per-rank trace files into one Chrome trace document.
///
/// Chrome/Perfetto match `"B"`/`"E"` pairs as a per-`(pid,tid)` stack,
/// so ordering at equal timestamps decides which span a duration is
/// attributed to. Events are sorted by timestamp with tie-breaks that
/// keep the stack honest: ends of earlier spans come before begins
/// (touching spans do not nest), among same-timestamp `"B"`s the span
/// that ends last (the outer one) opens first, among same-timestamp
/// `"E"`s the span that started last (the inner one) closes first, and
/// a zero-duration span keeps its `"E"` immediately after its own
/// `"B"`.
pub fn merge(files: &[TraceFile]) -> ChromeTrace {
    // (ts, class, tie, sub): class 0 = span ends, 1 = begins/instants
    // (and the glued ends of zero-duration spans, ordered after their
    // begin by `sub`); `tie` is negated so larger spans sort first.
    struct Keyed {
        ts: f64,
        class: u8,
        tie: f64,
        sub: u8,
        ev: ChromeEvent,
    }
    let mut events: Vec<Keyed> = Vec::new();
    for f in files {
        for ev in &f.events {
            let start_us = ev.start_ns as f64 / 1000.0;
            let end_us = ev.end_ns as f64 / 1000.0;
            let base = ChromeEvent {
                name: ev.name.clone(),
                cat: ev.lane.label().to_string(),
                ph: String::new(),
                ts: start_us,
                pid: f.rank as u64,
                tid: ev.tid as u64,
                arg: ev.arg,
            };
            match ev.kind {
                Kind::Instant => events.push(Keyed {
                    ts: start_us,
                    class: 1,
                    tie: -start_us,
                    sub: 0,
                    ev: ChromeEvent { ph: "i".into(), ..base },
                }),
                Kind::Span => {
                    events.push(Keyed {
                        ts: start_us,
                        class: 1,
                        tie: -end_us,
                        sub: 0,
                        ev: ChromeEvent { ph: "B".into(), ..base.clone() },
                    });
                    let end = ChromeEvent { ph: "E".into(), ts: end_us, ..base };
                    if end_us > start_us {
                        events.push(Keyed {
                            ts: end_us,
                            class: 0,
                            tie: -start_us,
                            sub: 0,
                            ev: end,
                        });
                    } else {
                        events.push(Keyed { ts: end_us, class: 1, tie: -end_us, sub: 1, ev: end });
                    }
                }
            }
        }
    }
    events.sort_by(|a, b| {
        a.ts.total_cmp(&b.ts)
            .then(a.class.cmp(&b.class))
            .then(a.tie.total_cmp(&b.tie))
            .then(a.sub.cmp(&b.sub))
    });
    ChromeTrace {
        traceEvents: events.into_iter().map(|k| k.ev).collect(),
        displayTimeUnit: "ms".to_string(),
    }
}

/// Per-span-name aggregate over every rank, for the summary table.
#[derive(Debug, Clone)]
pub struct SpanSummary {
    pub name: String,
    pub lane: &'static str,
    pub count: u64,
    pub total_us: f64,
    pub max_us: f64,
}

/// Aggregate span statistics by name (instants count with zero
/// duration), sorted by total time, descending.
pub fn summarize(files: &[TraceFile]) -> Vec<SpanSummary> {
    let mut rows: Vec<SpanSummary> = Vec::new();
    for f in files {
        for ev in &f.events {
            let dur_us = ev.end_ns.saturating_sub(ev.start_ns) as f64 / 1000.0;
            match rows.iter_mut().find(|r| r.name == ev.name) {
                Some(r) => {
                    r.count += 1;
                    r.total_us += dur_us;
                    r.max_us = r.max_us.max(dur_us);
                }
                None => rows.push(SpanSummary {
                    name: ev.name.clone(),
                    lane: ev.lane.label(),
                    count: 1,
                    total_us: dur_us,
                    max_us: dur_us,
                }),
            }
        }
    }
    rows.sort_by(|a, b| b.total_us.total_cmp(&a.total_us));
    rows
}

/// Render the summary rows as an aligned text table.
pub fn summary_table(files: &[TraceFile]) -> String {
    use std::fmt::Write as _;
    let rows = summarize(files);
    let mut s = String::new();
    let ranks: Vec<u32> = files.iter().map(|f| f.rank).collect();
    let dropped: u64 = files.iter().map(|f| f.dropped).sum();
    let _ = writeln!(
        s,
        "== span summary over ranks {ranks:?} ({} events{}) ==",
        files.iter().map(|f| f.events.len()).sum::<usize>(),
        if dropped > 0 { format!(", {dropped} wrapped out of the ring") } else { String::new() }
    );
    let _ = writeln!(
        s,
        "{:<32} {:>5} {:>8} {:>12} {:>12} {:>12}",
        "span", "lane", "count", "total ms", "mean us", "max us"
    );
    for r in rows {
        let _ = writeln!(
            s,
            "{:<32} {:>5} {:>8} {:>12.3} {:>12.2} {:>12.2}",
            r.name,
            r.lane,
            r.count,
            r.total_us / 1000.0,
            r.total_us / r.count as f64,
            r.max_us
        );
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::file::FileEvent;
    use crate::metrics::MetricsSnapshot;
    use crate::recorder::Lane;

    fn demo_file(rank: u32) -> TraceFile {
        TraceFile {
            rank,
            events: vec![
                FileEvent {
                    name: "SpMV".into(),
                    lane: Lane::Compute,
                    kind: Kind::Span,
                    tid: 1,
                    start_ns: 1000,
                    end_ns: 5000,
                    arg: 0,
                },
                FileEvent {
                    name: "fault crash".into(),
                    lane: Lane::Fault,
                    kind: Kind::Instant,
                    tid: 1,
                    start_ns: 2000,
                    end_ns: 2000,
                    arg: 1,
                },
            ],
            overlaps: vec![],
            dropped: 0,
            metrics: MetricsSnapshot::default(),
        }
    }

    #[test]
    fn merge_balances_begin_end_and_tags_ranks() {
        let doc = merge(&[demo_file(0), demo_file(1)]);
        let b = doc.traceEvents.iter().filter(|e| e.ph == "B").count();
        let e = doc.traceEvents.iter().filter(|e| e.ph == "E").count();
        let i = doc.traceEvents.iter().filter(|e| e.ph == "i").count();
        assert_eq!((b, e, i), (2, 2, 2));
        assert!(doc.traceEvents.windows(2).all(|w| w[0].ts <= w[1].ts), "sorted by ts");
        let pids: std::collections::HashSet<u64> = doc.traceEvents.iter().map(|e| e.pid).collect();
        assert_eq!(pids.len(), 2);
        // Valid JSON by construction: it round-trips through serde.
        let json = serde_json::to_string(&doc).unwrap();
        let back: ChromeTrace = serde_json::from_str(&json).unwrap();
        assert_eq!(doc, back);
        assert!(json.contains("\"traceEvents\""));
    }

    #[test]
    fn equal_timestamp_ties_keep_the_stack_honest() {
        let span = |name: &str, start_ns: u64, end_ns: u64| FileEvent {
            name: name.into(),
            lane: Lane::Compute,
            kind: Kind::Span,
            tid: 1,
            start_ns,
            end_ns,
            arg: 0,
        };
        let f = TraceFile {
            rank: 0,
            events: vec![
                span("inner", 1000, 3000), // starts with outer
                span("outer", 1000, 5000),
                span("tail", 3000, 5000), // starts as inner ends, ends with outer
                span("zero", 2000, 2000),
                span("next", 5000, 6000), // starts as outer ends
            ],
            overlaps: vec![],
            dropped: 0,
            metrics: MetricsSnapshot::default(),
        };
        let doc = merge(&[f]);
        let pos = |name: &str, ph: &str| {
            doc.traceEvents.iter().position(|e| e.name == name && e.ph == ph).unwrap()
        };
        // Same start: the outer span opens first.
        assert!(pos("outer", "B") < pos("inner", "B"));
        // Same end: the inner-most span closes first.
        assert!(pos("tail", "E") < pos("outer", "E"));
        // Touching spans close before the next opens instead of nesting.
        assert!(pos("inner", "E") < pos("tail", "B"));
        assert!(pos("outer", "E") < pos("next", "B"));
        // A zero-duration span stays a glued B/E pair inside its parent.
        assert_eq!(pos("zero", "B") + 1, pos("zero", "E"));
        assert!(pos("outer", "B") < pos("zero", "B"));
        // Replay the stream as Chrome would: B/E matched as a stack,
        // every E must pop the span it belongs to.
        let mut stack: Vec<&str> = Vec::new();
        for e in &doc.traceEvents {
            match e.ph.as_str() {
                "B" => stack.push(&e.name),
                "E" => assert_eq!(stack.pop(), Some(e.name.as_str()), "cross-attributed span"),
                _ => {}
            }
        }
        assert!(stack.is_empty());
    }

    #[test]
    fn summary_aggregates_by_name() {
        let rows = summarize(&[demo_file(0), demo_file(1)]);
        let spmv = rows.iter().find(|r| r.name == "SpMV").unwrap();
        assert_eq!(spmv.count, 2);
        assert!((spmv.total_us - 8.0).abs() < 1e-9);
        assert_eq!(spmv.lane, "GPU");
        let table = summary_table(&[demo_file(0)]);
        assert!(table.contains("SpMV"));
        assert!(table.contains("GPU"));
    }
}
