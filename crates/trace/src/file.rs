//! The per-rank binary trace file: a compact dump of one process's
//! global recorder plus its metrics snapshot, written at rank
//! shutdown and merged offline by the `hpgmxp-trace` CLI.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic   "HPTR"            4 bytes
//! version u16               currently 1
//! rank    u32
//! names   u32 count, then per name: u16 len + UTF-8 bytes
//! events  u32 count, then per event:
//!           u32 name_id, u8 lane, u8 kind, u16 pad,
//!           u32 tid, u64 start_ns, u64 end_ns, u64 arg
//! overlaps u32 count, then 7 × u64 each
//! dropped u64               events lost (ring wrap or contention)
//! metrics u32 len + JSON    a `MetricsSnapshot`
//! ```

use crate::metrics::MetricsSnapshot;
use crate::recorder::{Kind, Lane, OverlapRec, Recorder};
use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

const MAGIC: &[u8; 4] = b"HPTR";
const VERSION: u16 = 1;

/// One event as read back from a trace file (names are owned — the
/// `&'static str` identity does not cross processes).
#[derive(Debug, Clone, PartialEq)]
pub struct FileEvent {
    pub name: String,
    pub lane: Lane,
    pub kind: Kind,
    pub tid: u32,
    pub start_ns: u64,
    pub end_ns: u64,
    pub arg: u64,
}

/// The parsed contents of one per-rank trace file.
#[derive(Debug, Clone)]
pub struct TraceFile {
    pub rank: u32,
    pub events: Vec<FileEvent>,
    pub overlaps: Vec<OverlapRec>,
    /// Events the rank's ring lost (wrapped over by capacity, or
    /// dropped when wrapped writers contended for a slot) — a
    /// non-zero value tells the reader the trace window is partial.
    pub dropped: u64,
    pub metrics: MetricsSnapshot,
}

/// Serialize one recorder (plus the current global metrics snapshot)
/// to `path`.
pub fn write_trace_file(path: &Path, rank: u32, rec: &Recorder) -> io::Result<()> {
    let events = rec.events();
    let overlaps = rec.overlaps();
    let metrics = MetricsSnapshot::capture();
    let metrics_json = serde_json::to_string(&metrics).map_err(io::Error::other)?;

    let mut names: Vec<&'static str> = Vec::new();
    let mut ids: HashMap<*const u8, u32> = HashMap::new();
    for ev in &events {
        ids.entry(ev.name.as_ptr()).or_insert_with(|| {
            names.push(ev.name);
            (names.len() - 1) as u32
        });
    }

    let mut out = Vec::with_capacity(64 + events.len() * 34 + overlaps.len() * 56);
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&rank.to_le_bytes());
    out.extend_from_slice(&(names.len() as u32).to_le_bytes());
    for n in &names {
        out.extend_from_slice(&(n.len() as u16).to_le_bytes());
        out.extend_from_slice(n.as_bytes());
    }
    out.extend_from_slice(&(events.len() as u32).to_le_bytes());
    for ev in &events {
        out.extend_from_slice(&ids[&ev.name.as_ptr()].to_le_bytes());
        out.push(ev.lane as u8);
        out.push(ev.kind as u8);
        out.extend_from_slice(&[0u8; 2]);
        out.extend_from_slice(&ev.tid.to_le_bytes());
        out.extend_from_slice(&ev.start_ns.to_le_bytes());
        out.extend_from_slice(&ev.end_ns.to_le_bytes());
        out.extend_from_slice(&ev.arg.to_le_bytes());
    }
    out.extend_from_slice(&(overlaps.len() as u32).to_le_bytes());
    for o in &overlaps {
        for w in [
            o.tag,
            o.bytes_sent,
            o.bytes_received,
            o.pack_ns,
            o.window_ns,
            o.wire_wait_ns,
            o.unpack_ns,
        ] {
            out.extend_from_slice(&w.to_le_bytes());
        }
    }
    out.extend_from_slice(&(rec.dropped() as u64).to_le_bytes());
    out.extend_from_slice(&(metrics_json.len() as u32).to_le_bytes());
    out.extend_from_slice(metrics_json.as_bytes());

    let mut f = std::fs::File::create(path)?;
    f.write_all(&out)?;
    f.sync_all()
}

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        if self.pos + n > self.buf.len() {
            return Err(format!("truncated trace file at offset {}", self.pos));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u16(&mut self) -> Result<u16, String> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
}

/// Parse one per-rank trace file.
pub fn read_trace_file(path: &Path) -> Result<TraceFile, String> {
    let mut buf = Vec::new();
    std::fs::File::open(path)
        .and_then(|mut f| f.read_to_end(&mut buf))
        .map_err(|e| format!("read {}: {e}", path.display()))?;
    let mut c = Cursor { buf: &buf, pos: 0 };
    if c.take(4)? != MAGIC {
        return Err(format!("{}: not a trace file (bad magic)", path.display()));
    }
    let version = c.u16()?;
    if version != VERSION {
        return Err(format!("{}: unsupported trace version {version}", path.display()));
    }
    let rank = c.u32()?;
    let name_count = c.u32()? as usize;
    let mut names = Vec::with_capacity(name_count);
    for _ in 0..name_count {
        let len = c.u16()? as usize;
        let s = std::str::from_utf8(c.take(len)?)
            .map_err(|e| format!("{}: bad name: {e}", path.display()))?;
        names.push(s.to_string());
    }
    let event_count = c.u32()? as usize;
    let mut events = Vec::with_capacity(event_count);
    for _ in 0..event_count {
        let name_id = c.u32()? as usize;
        let lane = Lane::from_u8(c.take(1)?[0]);
        let kind = Kind::from_u8(c.take(1)?[0]);
        c.take(2)?;
        let tid = c.u32()?;
        let start_ns = c.u64()?;
        let end_ns = c.u64()?;
        let arg = c.u64()?;
        let name = names
            .get(name_id)
            .ok_or_else(|| format!("{}: name id {name_id} out of range", path.display()))?
            .clone();
        events.push(FileEvent { name, lane, kind, tid, start_ns, end_ns, arg });
    }
    let overlap_count = c.u32()? as usize;
    let mut overlaps = Vec::with_capacity(overlap_count);
    for _ in 0..overlap_count {
        overlaps.push(OverlapRec {
            tag: c.u64()?,
            bytes_sent: c.u64()?,
            bytes_received: c.u64()?,
            pack_ns: c.u64()?,
            window_ns: c.u64()?,
            wire_wait_ns: c.u64()?,
            unpack_ns: c.u64()?,
        });
    }
    let dropped = c.u64()?;
    let metrics_len = c.u32()? as usize;
    let metrics_json = std::str::from_utf8(c.take(metrics_len)?)
        .map_err(|e| format!("{}: bad metrics blob: {e}", path.display()))?;
    let metrics = serde_json::from_str(metrics_json)
        .map_err(|e| format!("{}: bad metrics JSON: {e}", path.display()))?;
    Ok(TraceFile { rank, events, overlaps, dropped, metrics })
}

/// The file a rank flushes into `dir`.
pub fn trace_file_name(rank: u32) -> String {
    format!("trace-rank{rank}.bin")
}

/// Flush the global recorder to `$HPGMXP_TRACE_DIR/trace-rank<R>.bin`
/// if a trace dir is armed and tracing is not off. Returns the path
/// written, `None` when un-armed. Idempotent: a later flush rewrites
/// the file with the (cumulative) ring contents.
pub fn flush_global(rank: u32) -> Option<io::Result<PathBuf>> {
    if !crate::counters_armed() {
        return None;
    }
    let dir = std::env::var_os("HPGMXP_TRACE_DIR")?;
    let dir = PathBuf::from(dir);
    let path = dir.join(trace_file_name(rank));
    let res = std::fs::create_dir_all(&dir)
        .and_then(|()| write_trace_file(&path, rank, crate::recorder::global()))
        .map(|()| path);
    Some(res)
}

/// RAII guard that flushes the global recorder on drop — including on
/// unwind, so a crashed rank still leaves its trace file behind for
/// post-mortem merging.
#[derive(Debug)]
pub struct FlushGuard {
    rank: u32,
}

impl FlushGuard {
    pub fn new(rank: u32) -> FlushGuard {
        FlushGuard { rank }
    }
}

impl Drop for FlushGuard {
    fn drop(&mut self) {
        if let Some(Err(e)) = flush_global(self.rank) {
            eprintln!("[trace] failed to flush trace file for rank {}: {e}", self.rank);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::Recorder;

    #[test]
    fn trace_file_roundtrips() {
        let rec = Recorder::new(16, 4);
        {
            let _s = rec.span("alpha", Lane::Compute);
        }
        rec.instant("beta", Lane::Fault, 9);
        rec.add_overlap(OverlapRec { tag: 3, bytes_sent: 64, ..Default::default() });

        let dir = std::env::temp_dir().join(format!("hpgmxp-trace-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(trace_file_name(7));
        write_trace_file(&path, 7, &rec).unwrap();
        let back = read_trace_file(&path).unwrap();
        std::fs::remove_dir_all(&dir).ok();

        assert_eq!(back.rank, 7);
        assert_eq!(back.dropped, 0);
        assert_eq!(back.events.len(), 2);
        assert_eq!(back.events[0].name, "alpha");
        assert_eq!(back.events[0].kind, Kind::Span);
        assert_eq!(back.events[1].name, "beta");
        assert_eq!(back.events[1].lane, Lane::Fault);
        assert_eq!(back.events[1].arg, 9);
        assert_eq!(back.overlaps.len(), 1);
        assert_eq!(back.overlaps[0].tag, 3);
        assert_eq!(back.overlaps[0].bytes_sent, 64);
    }

    #[test]
    fn rejects_garbage() {
        let dir = std::env::temp_dir().join(format!("hpgmxp-trace-bad-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.bin");
        std::fs::write(&path, b"not a trace").unwrap();
        let err = read_trace_file(&path).unwrap_err();
        std::fs::remove_dir_all(&dir).ok();
        assert!(err.contains("bad magic"), "{err}");
    }
}
