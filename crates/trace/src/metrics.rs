//! The metrics registry: named counters, gauges, and log2-bucket
//! histograms.
//!
//! Registration (first use of a name) takes a lock and allocates once;
//! every update afterwards is a relaxed atomic operation. Call sites
//! cache the registered handle in a `OnceLock` via the [`counter!`]/
//! [`gauge!`]/[`histogram!`] macros, so the steady-state cost of an
//! update is one load, one mode branch, and one atomic add — cheap
//! enough to leave armed in `counters` mode on hot transport paths
//! without breaking the zero-allocation gate.

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Add 1 (no-op unless metrics are armed).
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n` (no-op unless metrics are armed).
    #[inline]
    pub fn add(&self, n: u64) {
        if crate::counters_armed() {
            self.0.fetch_add(n, Ordering::Relaxed);
        }
    }

    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-value-wins gauge.
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// Set the value (no-op unless metrics are armed).
    #[inline]
    pub fn set(&self, v: u64) {
        if crate::counters_armed() {
            self.0.store(v, Ordering::Relaxed);
        }
    }

    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of log2 buckets: bucket `i` counts values whose bit length
/// is `i` (`v == 0` lands in bucket 0), so the full `u64` range fits.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A histogram over fixed log2 buckets, plus count and sum.
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram").field("count", &self.count.load(Ordering::Relaxed)).finish()
    }
}

impl Histogram {
    /// The log2 bucket index of a value: its bit length.
    #[inline]
    pub fn bucket_of(v: u64) -> usize {
        (64 - v.leading_zeros()) as usize
    }

    /// Record one observation (no-op unless metrics are armed).
    #[inline]
    pub fn observe(&self, v: u64) {
        if crate::counters_armed() {
            self.buckets[Self::bucket_of(v)].fetch_add(1, Ordering::Relaxed);
            self.count.fetch_add(1, Ordering::Relaxed);
            self.sum.fetch_add(v, Ordering::Relaxed);
        }
    }

    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }
}

/// The registries behind [`counter`]/[`gauge`]/[`histogram`]. Handles
/// are leaked boxes: metric lifetimes are the process lifetime.
#[derive(Default)]
struct Registry {
    counters: Mutex<Vec<(&'static str, &'static Counter)>>,
    gauges: Mutex<Vec<(&'static str, &'static Gauge)>>,
    histograms: Mutex<Vec<(&'static str, &'static Histogram)>>,
}

static REGISTRY: OnceLock<Registry> = OnceLock::new();

fn registry() -> &'static Registry {
    REGISTRY.get_or_init(Registry::default)
}

fn get_or_register<T: Default + 'static>(
    table: &Mutex<Vec<(&'static str, &'static T)>>,
    name: &'static str,
) -> &'static T {
    let mut t = table.lock();
    if let Some((_, h)) = t.iter().find(|(n, _)| *n == name) {
        return h;
    }
    let h: &'static T = Box::leak(Box::default());
    t.push((name, h));
    h
}

/// The counter registered under `name` (registering it on first use).
/// Hot paths should cache the handle — see the [`counter!`] macro.
pub fn counter(name: &'static str) -> &'static Counter {
    get_or_register(&registry().counters, name)
}

/// The gauge registered under `name`.
pub fn gauge(name: &'static str) -> &'static Gauge {
    get_or_register(&registry().gauges, name)
}

/// The histogram registered under `name`.
pub fn histogram(name: &'static str) -> &'static Histogram {
    get_or_register(&registry().histograms, name)
}

/// A registered counter handle, cached per call site.
#[macro_export]
macro_rules! counter {
    ($name:literal) => {{
        static HANDLE: ::std::sync::OnceLock<&'static $crate::metrics::Counter> =
            ::std::sync::OnceLock::new();
        *HANDLE.get_or_init(|| $crate::metrics::counter($name))
    }};
}

/// A registered gauge handle, cached per call site.
#[macro_export]
macro_rules! gauge {
    ($name:literal) => {{
        static HANDLE: ::std::sync::OnceLock<&'static $crate::metrics::Gauge> =
            ::std::sync::OnceLock::new();
        *HANDLE.get_or_init(|| $crate::metrics::gauge($name))
    }};
}

/// A registered histogram handle, cached per call site.
#[macro_export]
macro_rules! histogram {
    ($name:literal) => {{
        static HANDLE: ::std::sync::OnceLock<&'static $crate::metrics::Histogram> =
            ::std::sync::OnceLock::new();
        *HANDLE.get_or_init(|| $crate::metrics::histogram($name))
    }};
}

/// One histogram, snapshotted: only non-empty buckets are kept, as
/// `(log2 bucket index, count)` pairs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    pub name: String,
    pub count: u64,
    pub sum: u64,
    pub buckets: Vec<(u32, u64)>,
}

/// A point-in-time copy of every registered metric, sorted by name
/// (deterministic layout for reports and goldens). Serializable so
/// campaign reports can embed it.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    pub counters: Vec<(String, u64)>,
    pub gauges: Vec<(String, u64)>,
    pub histograms: Vec<HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Snapshot the global registry.
    pub fn capture() -> MetricsSnapshot {
        let reg = registry();
        let mut counters: Vec<(String, u64)> =
            reg.counters.lock().iter().map(|(n, c)| (n.to_string(), c.get())).collect();
        counters.sort();
        let mut gauges: Vec<(String, u64)> =
            reg.gauges.lock().iter().map(|(n, g)| (n.to_string(), g.get())).collect();
        gauges.sort();
        let mut histograms: Vec<HistogramSnapshot> = reg
            .histograms
            .lock()
            .iter()
            .map(|(n, h)| HistogramSnapshot {
                name: n.to_string(),
                count: h.count(),
                sum: h.sum(),
                buckets: h
                    .buckets
                    .iter()
                    .enumerate()
                    .filter_map(|(i, b)| {
                        let c = b.load(Ordering::Relaxed);
                        (c > 0).then_some((i as u32, c))
                    })
                    .collect(),
            })
            .collect();
        histograms.sort_by(|a, b| a.name.cmp(&b.name));
        MetricsSnapshot { counters, gauges, histograms }
    }

    /// The change from `earlier` to `self`: counters and histogram
    /// counts subtract (names absent earlier count from zero); gauges
    /// keep their current value. Metrics that did not move are
    /// dropped, so a quiet subsystem leaves no noise in a report.
    pub fn delta_since(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        let base = |name: &str| {
            earlier.counters.iter().find(|(n, _)| n == name).map(|(_, v)| *v).unwrap_or(0)
        };
        let counters: Vec<(String, u64)> = self
            .counters
            .iter()
            .filter_map(|(n, v)| {
                let d = v.saturating_sub(base(n));
                (d > 0).then(|| (n.clone(), d))
            })
            .collect();
        let gauges = self.gauges.clone();
        let histograms: Vec<HistogramSnapshot> = self
            .histograms
            .iter()
            .filter_map(|h| {
                let old = earlier.histograms.iter().find(|e| e.name == h.name);
                let old_count = old.map_or(0, |e| e.count);
                let count = h.count.saturating_sub(old_count);
                if count == 0 {
                    return None;
                }
                let old_bucket = |i: u32| {
                    old.and_then(|e| e.buckets.iter().find(|(bi, _)| *bi == i))
                        .map(|(_, c)| *c)
                        .unwrap_or(0)
                };
                Some(HistogramSnapshot {
                    name: h.name.clone(),
                    count,
                    sum: h.sum.saturating_sub(old.map_or(0, |e| e.sum)),
                    buckets: h
                        .buckets
                        .iter()
                        .filter_map(|(i, c)| {
                            let d = c.saturating_sub(old_bucket(*i));
                            (d > 0).then_some((*i, d))
                        })
                        .collect(),
                })
            })
            .collect();
        MetricsSnapshot { counters, gauges, histograms }
    }

    /// Is there nothing in this snapshot?
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log2_buckets_partition_the_range() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 1);
        assert_eq!(Histogram::bucket_of(2), 2);
        assert_eq!(Histogram::bucket_of(3), 2);
        assert_eq!(Histogram::bucket_of(4), 3);
        assert_eq!(Histogram::bucket_of(1023), 10);
        assert_eq!(Histogram::bucket_of(1024), 11);
        assert_eq!(Histogram::bucket_of(u64::MAX), 64);
    }

    #[test]
    fn counters_and_snapshots_delta() {
        let _guard = crate::TEST_MODE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        crate::set_mode_override(crate::Mode::Counters);
        let c = counter("test.snapshot_delta");
        let h = histogram("test.snapshot_hist");
        let before = MetricsSnapshot::capture();
        c.add(5);
        h.observe(100);
        h.observe(1000);
        let after = MetricsSnapshot::capture();
        let d = after.delta_since(&before);
        assert_eq!(
            d.counters.iter().find(|(n, _)| n == "test.snapshot_delta").map(|(_, v)| *v),
            Some(5)
        );
        let hd = d.histograms.iter().find(|h| h.name == "test.snapshot_hist").unwrap();
        assert_eq!(hd.count, 2);
        assert_eq!(hd.sum, 1100);
        assert_eq!(hd.buckets.iter().map(|(_, c)| c).sum::<u64>(), 2);
        crate::set_mode_override(crate::Mode::Off);
    }

    #[test]
    fn registration_is_idempotent() {
        let a = counter("test.same_name") as *const Counter;
        let b = counter("test.same_name") as *const Counter;
        assert_eq!(a, b);
    }

    #[test]
    fn snapshot_roundtrips_through_json() {
        let s = MetricsSnapshot {
            counters: vec![("a".into(), 1)],
            gauges: vec![("g".into(), 2)],
            histograms: vec![HistogramSnapshot {
                name: "h".into(),
                count: 3,
                sum: 9,
                buckets: vec![(2, 3)],
            }],
        };
        let json = serde_json::to_string(&s).unwrap();
        let back: MetricsSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
    }
}
