//! Unified tracing and metrics for the HPG-MxP reproduction.
//!
//! The paper's core claim is about *where time and bytes go* at scale;
//! this crate is the one mechanism every layer records into, replacing
//! the fragmented `Timeline`-in-comm / `CollStats`-bolted-on /
//! log-line-only instrumentation that preceded it. It sits **below**
//! the comm crate in the dependency order so solver, transports,
//! checkpointing, and the harness can all share it.
//!
//! Three pieces:
//!
//! * a per-rank, lock-free, **preallocated ring-buffer recorder**
//!   ([`Recorder`]) of spans and instant events — monotonic
//!   timestamps, thread-id tagged, zero steady-state allocation when
//!   armed and a single atomic-load branch when off;
//! * a **metrics registry** ([`metrics`]) of named counters, gauges,
//!   and histograms with fixed log2 buckets — cheap enough to stay on
//!   in `counters` mode even when span recording is off;
//! * an **export pipeline**: per-rank binary trace files
//!   ([`file`]), merged by the `hpgmxp-trace` CLI into Chrome
//!   trace-event JSON ([`chrome`]) loadable in `chrome://tracing` or
//!   [Perfetto](https://ui.perfetto.dev).
//!
//! ## Arming
//!
//! `HPGMXP_TRACE` selects the mode once per process (cached in an
//! atomic, so the steady-state cost of an un-armed span is one
//! relaxed load and a branch):
//!
//! * `off` (default) — spans are no-ops, metrics are no-ops;
//! * `counters` — metrics record, spans are no-ops;
//! * `spans` — metrics and the global span ring both record.
//!
//! `HPGMXP_TRACE_DIR` names a directory to flush the per-rank binary
//! trace file into (`trace-rank<R>.bin`); the `hpgmxp-launch
//! --trace-dir` flag arms both variables for every child rank.
//! `HPGMXP_TRACE_CAPACITY` overrides the global ring's event capacity
//! (default 65536; the ring wraps, keeping the newest events).

pub mod chrome;
pub mod file;
pub mod metrics;
pub mod recorder;

pub use file::{flush_global, read_trace_file, write_trace_file, FlushGuard, TraceFile};
pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot, MetricsSnapshot};
pub use recorder::{
    current_tid, global, instant, span, EventRec, Kind, Lane, OverlapRec, Recorder, SpanGuard,
};

use std::sync::atomic::{AtomicU8, Ordering};

/// What the process records (see the crate docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Mode {
    /// Nothing recorded; every probe costs one load + branch.
    Off = 0,
    /// Metrics (counters/gauges/histograms) recorded, spans off.
    Counters = 1,
    /// Metrics and the global span ring both recorded.
    Spans = 2,
}

const MODE_UNINIT: u8 = 0xFF;
static MODE: AtomicU8 = AtomicU8::new(MODE_UNINIT);

/// The process trace mode, resolved from `HPGMXP_TRACE` on first use
/// and cached — the hot-path cost afterwards is a single relaxed
/// atomic load.
#[inline]
pub fn mode() -> Mode {
    match MODE.load(Ordering::Relaxed) {
        0 => Mode::Off,
        1 => Mode::Counters,
        2 => Mode::Spans,
        _ => init_mode(),
    }
}

#[cold]
fn init_mode() -> Mode {
    let m = match std::env::var("HPGMXP_TRACE").ok().as_deref() {
        Some("counters") => Mode::Counters,
        Some("spans") => Mode::Spans,
        None | Some("") | Some("off") => Mode::Off,
        Some(other) => {
            eprintln!("[trace] unknown HPGMXP_TRACE={other:?} (expected off|counters|spans); off");
            Mode::Off
        }
    };
    MODE.store(m as u8, Ordering::Relaxed);
    m
}

/// Force the mode, overriding `HPGMXP_TRACE` (tests, and the launcher
/// path that arms children explicitly).
pub fn set_mode_override(m: Mode) {
    MODE.store(m as u8, Ordering::Relaxed);
}

/// Is the global span ring armed? One load + branch when not.
#[inline]
pub fn spans_armed() -> bool {
    mode() == Mode::Spans
}

/// Are metrics armed (`counters` or `spans`)?
#[inline]
pub fn counters_armed() -> bool {
    mode() != Mode::Off
}

/// Serializes tests that flip the process-wide mode override (the
/// test binary runs tests in parallel threads).
#[cfg(test)]
pub(crate) static TEST_MODE_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_roundtrips_through_override() {
        let _guard = crate::TEST_MODE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        set_mode_override(Mode::Spans);
        assert!(spans_armed());
        assert!(counters_armed());
        set_mode_override(Mode::Counters);
        assert!(!spans_armed());
        assert!(counters_armed());
        set_mode_override(Mode::Off);
        assert!(!spans_armed());
        assert!(!counters_armed());
    }
}
