//! `hpgmxp-trace` — merge per-rank binary trace files into Chrome
//! trace-event JSON and print a per-span summary table.
//!
//! ```text
//! hpgmxp-trace <dir | file.bin ...> [--out merged.json] [--quiet]
//! ```
//!
//! A directory argument is scanned for `trace-rank*.bin` files (every
//! `.bin` file is accepted). The merged JSON goes to `--out` or
//! stdout; the summary table goes to stderr (so piping stdout into a
//! file still yields pure JSON). Load the merged file in
//! `chrome://tracing` or <https://ui.perfetto.dev>.

use hpgmxp_trace::{chrome, read_trace_file, TraceFile};
use std::path::PathBuf;

const USAGE: &str = "usage: hpgmxp-trace <dir | file.bin ...> [--out FILE] [--quiet]";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => {}
        Err(e) => {
            eprintln!("hpgmxp-trace: {e}");
            eprintln!("{USAGE}");
            std::process::exit(2);
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let mut inputs: Vec<PathBuf> = Vec::new();
    let mut out: Option<PathBuf> = None;
    let mut quiet = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--out" => {
                out = Some(PathBuf::from(
                    it.next().ok_or_else(|| "--out expects a file path".to_string())?,
                ));
            }
            "--quiet" => quiet = true,
            "-h" | "--help" => {
                println!("{USAGE}");
                return Ok(());
            }
            other if other.starts_with('-') => return Err(format!("unknown option {other:?}")),
            path => inputs.push(PathBuf::from(path)),
        }
    }
    if inputs.is_empty() {
        return Err("no input trace files or directories".to_string());
    }

    let mut files: Vec<PathBuf> = Vec::new();
    for input in inputs {
        if input.is_dir() {
            let mut found: Vec<PathBuf> = std::fs::read_dir(&input)
                .map_err(|e| format!("read dir {}: {e}", input.display()))?
                .filter_map(|e| e.ok())
                .map(|e| e.path())
                .filter(|p| p.extension().is_some_and(|x| x == "bin"))
                .collect();
            found.sort();
            if found.is_empty() {
                return Err(format!("no .bin trace files in {}", input.display()));
            }
            files.extend(found);
        } else {
            files.push(input);
        }
    }

    let mut traces: Vec<TraceFile> = Vec::new();
    for path in &files {
        traces.push(read_trace_file(path)?);
    }
    traces.sort_by_key(|t| t.rank);

    let doc = chrome::merge(&traces);
    let json = serde_json::to_string(&doc).map_err(|e| format!("serialize: {e}"))?;
    match &out {
        Some(path) => {
            std::fs::write(path, &json).map_err(|e| format!("write {}: {e}", path.display()))?;
            eprintln!(
                "hpgmxp-trace: merged {} ranks / {} events into {}",
                traces.len(),
                doc.traceEvents.len(),
                path.display()
            );
        }
        None => println!("{json}"),
    }
    if !quiet {
        eprint!("{}", chrome::summary_table(&traces));
    }
    Ok(())
}
