//! AVX2 + FMA + F16C implementations of the batch primitives and the
//! vectorized motif kernels.
//!
//! Every function here carries `#[target_feature(enable = "avx2,fma,f16c")]`
//! and must only be reached through the dispatch layer in [`super`],
//! which verifies the features at runtime. The kernels are written to
//! be **bit-identical** to their scalar counterparts for non-NaN data:
//!
//! * row groups are vectorized *across* rows — each lane owns one row's
//!   accumulator and performs exactly the scalar sequence of fused
//!   multiply-adds in ascending slab order (`vfmadd` fuses like
//!   `f64::mul_add`),
//! * widening conversions (`vcvtph2ps`, `vcvtps2pd`) are exact, and the
//!   narrowing ones (`vcvtpd2ps`, `vcvtps2ph`) round to nearest-even —
//!   the same rounding as `as f32` / `f32_to_f16_bits` for every finite
//!   and infinite value (NaN *payload* bits may differ; the software
//!   narrower canonicalizes, the hardware one preserves),
//! * `vdivpd`/`vdivps` and the add/sub/mul lanes are IEEE
//!   correctly-rounded, matching the scalar operators.
//!
//! Loose tails (`len % lane_count`) always run the same scalar
//! expressions as the portable fallback.
//!
//! Every kernel ends with `_mm256_zeroupper()`: rustc does **not**
//! insert `vzeroupper` on `#[target_feature]` function exits, and
//! returning with dirty upper YMM state makes every subsequent legacy
//! SSE/VEX-mixing instruction in the scalar code (including libm's
//! `fma` behind `f64::mul_add`) pay the AVX→SSE state-transition
//! penalty — measured at ~40x on the surrounding scalar loops.
//!
//! Safety contracts (callers — i.e. the dispatch layer — must ensure):
//! every gathered index is in bounds for its base slice, every index
//! fits in `i32` (gathers sign-extend), and the CPU supports
//! avx2+fma+f16c.

use crate::half::{f16_bits_to_f32, f32_to_f16_bits};
use core::arch::x86_64::*;

/// Rounding control for `vcvtps2ph`: round to nearest even — the
/// rounding `f32_to_f16_bits` implements. (The 3-bit immediate has no
/// room for `_MM_FROUND_NO_EXC`; conversion never traps here anyway.)
const ROUND_NE: i32 = _MM_FROUND_TO_NEAREST_INT;

/// Gather-target prefetch lookahead, matching the scalar ELL
/// traversal: the cached `HPGMXP_PREFETCH` distance (default 16, 0
/// disables). Hoisted to a local at each kernel's entry so the hot
/// loop never touches the `OnceLock`.
#[inline]
fn pf_dist() -> usize {
    crate::ell::prefetch_ahead()
}

// ---------------------------------------------------------------------------
// Scalar widening helpers for loop tails (exact; same arithmetic as
// `Acc::from_scalar` for the corresponding type pair).
// ---------------------------------------------------------------------------

#[inline(always)]
fn w64_f64(v: f64) -> f64 {
    v
}
#[inline(always)]
fn w64_f32(v: f32) -> f64 {
    v as f64
}
#[inline(always)]
fn w64_f16(v: u16) -> f64 {
    f16_bits_to_f32(v) as f64
}
#[inline(always)]
fn w32_f32(v: f32) -> f32 {
    v
}
#[inline(always)]
fn w32_f16(v: u16) -> f32 {
    f16_bits_to_f32(v)
}
#[inline(always)]
fn w32_f64(v: f64) -> f32 {
    v as f32
}

// ---------------------------------------------------------------------------
// Contiguous widening loads: `lane_count` stored values → one Acc vector.
// ---------------------------------------------------------------------------

#[target_feature(enable = "avx2,fma,f16c")]
#[inline]
unsafe fn ld4_f64(p: *const f64) -> __m256d {
    _mm256_loadu_pd(p)
}

#[target_feature(enable = "avx2,fma,f16c")]
#[inline]
unsafe fn ld4_f64_from_f32(p: *const f32) -> __m256d {
    _mm256_cvtps_pd(_mm_loadu_ps(p))
}

#[target_feature(enable = "avx2,fma,f16c")]
#[inline]
unsafe fn ld4_f64_from_f16(p: *const u16) -> __m256d {
    _mm256_cvtps_pd(_mm_cvtph_ps(_mm_loadl_epi64(p as *const __m128i)))
}

#[target_feature(enable = "avx2,fma,f16c")]
#[inline]
unsafe fn ld8_f32(p: *const f32) -> __m256 {
    _mm256_loadu_ps(p)
}

#[target_feature(enable = "avx2,fma,f16c")]
#[inline]
unsafe fn ld8_f32_from_f16(p: *const u16) -> __m256 {
    _mm256_cvtph_ps(_mm_loadu_si128(p as *const __m128i))
}

#[target_feature(enable = "avx2,fma,f16c")]
#[inline]
unsafe fn ld8_f32_from_f64(p: *const f64) -> __m256 {
    let lo = _mm256_cvtpd_ps(_mm256_loadu_pd(p));
    let hi = _mm256_cvtpd_ps(_mm256_loadu_pd(p.add(4)));
    _mm256_set_m128(hi, lo)
}

// ---------------------------------------------------------------------------
// Strided (gathered) widening loads: `lane_count` stored values at the
// i32 element offsets in `slot` → one Acc vector. fp16 has no hardware
// gather; its lanes are collected scalar-wise and widened in one go.
// ---------------------------------------------------------------------------

#[target_feature(enable = "avx2,fma,f16c")]
#[inline]
unsafe fn g4_f64(p: *const f64, slot: __m128i) -> __m256d {
    _mm256_i32gather_pd::<8>(p, slot)
}

#[target_feature(enable = "avx2,fma,f16c")]
#[inline]
unsafe fn g4_f64_from_f32(p: *const f32, slot: __m128i) -> __m256d {
    _mm256_cvtps_pd(_mm_i32gather_ps::<4>(p, slot))
}

#[target_feature(enable = "avx2,fma,f16c")]
#[inline]
unsafe fn g4_f64_from_f16(p: *const u16, slot: __m128i) -> __m256d {
    let mut s = [0i32; 4];
    _mm_storeu_si128(s.as_mut_ptr() as *mut __m128i, slot);
    let b: [u16; 4] = [
        *p.add(s[0] as usize),
        *p.add(s[1] as usize),
        *p.add(s[2] as usize),
        *p.add(s[3] as usize),
    ];
    ld4_f64_from_f16(b.as_ptr())
}

#[target_feature(enable = "avx2,fma,f16c")]
#[inline]
unsafe fn g8_f32(p: *const f32, slot: __m256i) -> __m256 {
    _mm256_i32gather_ps::<4>(p, slot)
}

#[target_feature(enable = "avx2,fma,f16c")]
#[inline]
unsafe fn g8_f32_from_f16(p: *const u16, slot: __m256i) -> __m256 {
    let mut s = [0i32; 8];
    _mm256_storeu_si256(s.as_mut_ptr() as *mut __m256i, slot);
    let b: [u16; 8] = [
        *p.add(s[0] as usize),
        *p.add(s[1] as usize),
        *p.add(s[2] as usize),
        *p.add(s[3] as usize),
        *p.add(s[4] as usize),
        *p.add(s[5] as usize),
        *p.add(s[6] as usize),
        *p.add(s[7] as usize),
    ];
    ld8_f32_from_f16(b.as_ptr())
}

#[target_feature(enable = "avx2,fma,f16c")]
#[inline]
unsafe fn g8_f32_from_f64(p: *const f64, slot: __m256i) -> __m256 {
    let lo = _mm256_i32gather_pd::<8>(p, _mm256_castsi256_si128(slot));
    let hi = _mm256_i32gather_pd::<8>(p, _mm256_extracti128_si256::<1>(slot));
    _mm256_set_m128(_mm256_cvtpd_ps(hi), _mm256_cvtpd_ps(lo))
}

/// Prefetch the gather targets `cp[at..at+count]` point to (element
/// width `elem_bytes`) — the vector-loop counterpart of the scalar
/// traversal's one-target-per-row software prefetch.
#[target_feature(enable = "avx2,fma,f16c")]
#[inline]
unsafe fn prefetch_gather_targets(
    base: *const u8,
    cp: *const u32,
    at: usize,
    elem_bytes: usize,
    count: usize,
) {
    for t in 0..count {
        let c = *cp.add(at + t) as usize;
        _mm_prefetch::<{ _MM_HINT_T0 }>(base.add(c * elem_bytes) as *const i8);
    }
}

// ---------------------------------------------------------------------------
// Batch conversions (the primitives the wire encoder, `half.rs` slice
// helpers, and `convert_slice` ride on).
// ---------------------------------------------------------------------------

/// Exact fp16 → f32 widening (`vcvtph2ps`), 8 lanes at a time.
#[target_feature(enable = "avx2,fma,f16c")]
pub unsafe fn widen_f16_f32(src: &[u16], dst: &mut [f32]) {
    let n = dst.len();
    let sp = src.as_ptr();
    let dp = dst.as_mut_ptr();
    let mut i = 0usize;
    while i + 8 <= n {
        let h = _mm_loadu_si128(sp.add(i) as *const __m128i);
        _mm256_storeu_ps(dp.add(i), _mm256_cvtph_ps(h));
        i += 8;
    }
    while i < n {
        *dp.add(i) = f16_bits_to_f32(*sp.add(i));
        i += 1;
    }
    _mm256_zeroupper();
}

/// f32 → fp16 narrowing (`vcvtps2ph`, nearest-even), 8 lanes at a time.
#[target_feature(enable = "avx2,fma,f16c")]
pub unsafe fn narrow_f32_f16(src: &[f32], dst: &mut [u16]) {
    let n = dst.len();
    let sp = src.as_ptr();
    let dp = dst.as_mut_ptr();
    let mut i = 0usize;
    while i + 8 <= n {
        let v = _mm256_loadu_ps(sp.add(i));
        _mm_storeu_si128(dp.add(i) as *mut __m128i, _mm256_cvtps_ph::<ROUND_NE>(v));
        i += 8;
    }
    while i < n {
        *dp.add(i) = f32_to_f16_bits(*sp.add(i));
        i += 1;
    }
    _mm256_zeroupper();
}

/// Exact f32 → f64 widening (`vcvtps2pd`), 4 lanes at a time.
#[target_feature(enable = "avx2,fma,f16c")]
pub unsafe fn widen_f32_f64(src: &[f32], dst: &mut [f64]) {
    let n = dst.len();
    let sp = src.as_ptr();
    let dp = dst.as_mut_ptr();
    let mut i = 0usize;
    while i + 4 <= n {
        _mm256_storeu_pd(dp.add(i), _mm256_cvtps_pd(_mm_loadu_ps(sp.add(i))));
        i += 4;
    }
    while i < n {
        *dp.add(i) = *sp.add(i) as f64;
        i += 1;
    }
    _mm256_zeroupper();
}

/// f64 → f32 narrowing (`vcvtpd2ps`, nearest-even), 4 lanes at a time.
#[target_feature(enable = "avx2,fma,f16c")]
pub unsafe fn narrow_f64_f32(src: &[f64], dst: &mut [f32]) {
    let n = dst.len();
    let sp = src.as_ptr();
    let dp = dst.as_mut_ptr();
    let mut i = 0usize;
    while i + 4 <= n {
        _mm_storeu_ps(dp.add(i), _mm256_cvtpd_ps(_mm256_loadu_pd(sp.add(i))));
        i += 4;
    }
    while i < n {
        *dp.add(i) = *sp.add(i) as f32;
        i += 1;
    }
    _mm256_zeroupper();
}

/// Exact fp16 → f64 widening (two exact steps), 4 lanes at a time.
#[target_feature(enable = "avx2,fma,f16c")]
pub unsafe fn widen_f16_f64(src: &[u16], dst: &mut [f64]) {
    let n = dst.len();
    let sp = src.as_ptr();
    let dp = dst.as_mut_ptr();
    let mut i = 0usize;
    while i + 4 <= n {
        _mm256_storeu_pd(dp.add(i), ld4_f64_from_f16(sp.add(i)));
        i += 4;
    }
    while i < n {
        *dp.add(i) = w64_f16(*sp.add(i));
        i += 1;
    }
    _mm256_zeroupper();
}

/// f64 → fp16 narrowing, the same f64 → f32 → f16 double rounding as
/// `Half::from_f64`, 4 lanes at a time.
#[target_feature(enable = "avx2,fma,f16c")]
pub unsafe fn narrow_f64_f16(src: &[f64], dst: &mut [u16]) {
    let n = dst.len();
    let sp = src.as_ptr();
    let dp = dst.as_mut_ptr();
    let mut i = 0usize;
    while i + 4 <= n {
        let ps = _mm256_cvtpd_ps(_mm256_loadu_pd(sp.add(i)));
        _mm_storel_epi64(dp.add(i) as *mut __m128i, _mm_cvtps_ph::<ROUND_NE>(ps));
        i += 4;
    }
    while i < n {
        *dp.add(i) = f32_to_f16_bits(*sp.add(i) as f32);
        i += 1;
    }
    _mm256_zeroupper();
}

// ---------------------------------------------------------------------------
// Streaming BLAS-1 kernels. Vector lanes perform exactly the scalar
// expression per element; tails run the scalar expression itself.
// ---------------------------------------------------------------------------

/// `y[i] = fma(alpha, widen(x[i]), y[i])` with f64 accumulation.
macro_rules! axpy_into_f64 {
    ($name:ident, $S:ty, $ld:ident, $wide:ident) => {
        #[target_feature(enable = "avx2,fma,f16c")]
        pub unsafe fn $name(alpha: f64, x: &[$S], y: &mut [f64]) {
            let n = y.len();
            let xp = x.as_ptr();
            let yp = y.as_mut_ptr();
            let av = _mm256_set1_pd(alpha);
            let mut i = 0usize;
            while i + 4 <= n {
                let yv = _mm256_loadu_pd(yp.add(i));
                _mm256_storeu_pd(yp.add(i), _mm256_fmadd_pd(av, $ld(xp.add(i)), yv));
                i += 4;
            }
            while i < n {
                *yp.add(i) = alpha.mul_add($wide(*xp.add(i)), *yp.add(i));
                i += 1;
            }
            _mm256_zeroupper();
        }
    };
}

/// `y[i] = fma(alpha, widen(x[i]), y[i])` with f32 accumulation.
macro_rules! axpy_into_f32 {
    ($name:ident, $S:ty, $ld:ident, $wide:ident) => {
        #[target_feature(enable = "avx2,fma,f16c")]
        pub unsafe fn $name(alpha: f32, x: &[$S], y: &mut [f32]) {
            let n = y.len();
            let xp = x.as_ptr();
            let yp = y.as_mut_ptr();
            let av = _mm256_set1_ps(alpha);
            let mut i = 0usize;
            while i + 8 <= n {
                let yv = _mm256_loadu_ps(yp.add(i));
                _mm256_storeu_ps(yp.add(i), _mm256_fmadd_ps(av, $ld(xp.add(i)), yv));
                i += 8;
            }
            while i < n {
                *yp.add(i) = alpha.mul_add($wide(*xp.add(i)), *yp.add(i));
                i += 1;
            }
            _mm256_zeroupper();
        }
    };
}

axpy_into_f64!(axpy_f64_f64, f64, ld4_f64, w64_f64);
axpy_into_f64!(axpy_f32_f64, f32, ld4_f64_from_f32, w64_f32);
axpy_into_f64!(axpy_f16_f64, u16, ld4_f64_from_f16, w64_f16);
axpy_into_f32!(axpy_f32_f32, f32, ld8_f32, w32_f32);
axpy_into_f32!(axpy_f16_f32, u16, ld8_f32_from_f16, w32_f16);

/// `w = alpha*x + beta*y` in f64: two rounded multiplies and one
/// rounded add per element — exactly the scalar
/// `(alpha * x).mul_add(ONE, beta * y)` (the `* ONE` is exact).
#[target_feature(enable = "avx2,fma,f16c")]
pub unsafe fn waxpby_f64(alpha: f64, x: &[f64], beta: f64, y: &[f64], w: &mut [f64]) {
    let n = w.len();
    let xp = x.as_ptr();
    let yp = y.as_ptr();
    let wp = w.as_mut_ptr();
    let av = _mm256_set1_pd(alpha);
    let bv = _mm256_set1_pd(beta);
    let mut i = 0usize;
    while i + 4 <= n {
        let t = _mm256_add_pd(
            _mm256_mul_pd(av, _mm256_loadu_pd(xp.add(i))),
            _mm256_mul_pd(bv, _mm256_loadu_pd(yp.add(i))),
        );
        _mm256_storeu_pd(wp.add(i), t);
        i += 4;
    }
    while i < n {
        *wp.add(i) = (alpha * *xp.add(i)).mul_add(1.0, beta * *yp.add(i));
        i += 1;
    }
    _mm256_zeroupper();
}

/// `w = alpha*x + beta*y` in f32 (see [`waxpby_f64`]).
#[target_feature(enable = "avx2,fma,f16c")]
pub unsafe fn waxpby_f32(alpha: f32, x: &[f32], beta: f32, y: &[f32], w: &mut [f32]) {
    let n = w.len();
    let xp = x.as_ptr();
    let yp = y.as_ptr();
    let wp = w.as_mut_ptr();
    let av = _mm256_set1_ps(alpha);
    let bv = _mm256_set1_ps(beta);
    let mut i = 0usize;
    while i + 8 <= n {
        let t = _mm256_add_ps(
            _mm256_mul_ps(av, _mm256_loadu_ps(xp.add(i))),
            _mm256_mul_ps(bv, _mm256_loadu_ps(yp.add(i))),
        );
        _mm256_storeu_ps(wp.add(i), t);
        i += 8;
    }
    while i < n {
        *wp.add(i) = (alpha * *xp.add(i)).mul_add(1.0, beta * *yp.add(i));
        i += 1;
    }
    _mm256_zeroupper();
}

/// `x *= alpha` in f64.
#[target_feature(enable = "avx2,fma,f16c")]
pub unsafe fn scal_f64(alpha: f64, x: &mut [f64]) {
    let n = x.len();
    let xp = x.as_mut_ptr();
    let av = _mm256_set1_pd(alpha);
    let mut i = 0usize;
    while i + 4 <= n {
        _mm256_storeu_pd(xp.add(i), _mm256_mul_pd(_mm256_loadu_pd(xp.add(i)), av));
        i += 4;
    }
    while i < n {
        *xp.add(i) *= alpha;
        i += 1;
    }
    _mm256_zeroupper();
}

/// `x *= alpha` in f32.
#[target_feature(enable = "avx2,fma,f16c")]
pub unsafe fn scal_f32(alpha: f32, x: &mut [f32]) {
    let n = x.len();
    let xp = x.as_mut_ptr();
    let av = _mm256_set1_ps(alpha);
    let mut i = 0usize;
    while i + 8 <= n {
        _mm256_storeu_ps(xp.add(i), _mm256_mul_ps(_mm256_loadu_ps(xp.add(i)), av));
        i += 8;
    }
    while i < n {
        *xp.add(i) *= alpha;
        i += 1;
    }
    _mm256_zeroupper();
}

/// `lo = hi * alpha` with `lo` in f64 (the identity "narrowing" of
/// `scale_f64_into_lo::<f64>`: one rounded multiply).
#[target_feature(enable = "avx2,fma,f16c")]
pub unsafe fn scale_f64_to_f64(alpha: f64, hi: &[f64], lo: &mut [f64]) {
    let n = lo.len();
    let hp = hi.as_ptr();
    let lp = lo.as_mut_ptr();
    let av = _mm256_set1_pd(alpha);
    let mut i = 0usize;
    while i + 4 <= n {
        _mm256_storeu_pd(lp.add(i), _mm256_mul_pd(_mm256_loadu_pd(hp.add(i)), av));
        i += 4;
    }
    while i < n {
        *lp.add(i) = *hp.add(i) * alpha;
        i += 1;
    }
    _mm256_zeroupper();
}

/// `lo = (hi * alpha) as f32`: rounded f64 multiply, then one
/// nearest-even narrowing — the scalar `f32::from_f64(h * alpha)`.
#[target_feature(enable = "avx2,fma,f16c")]
pub unsafe fn scale_f64_to_f32(alpha: f64, hi: &[f64], lo: &mut [f32]) {
    let n = lo.len();
    let hp = hi.as_ptr();
    let lp = lo.as_mut_ptr();
    let av = _mm256_set1_pd(alpha);
    let mut i = 0usize;
    while i + 4 <= n {
        let t = _mm256_mul_pd(_mm256_loadu_pd(hp.add(i)), av);
        _mm_storeu_ps(lp.add(i), _mm256_cvtpd_ps(t));
        i += 4;
    }
    while i < n {
        *lp.add(i) = (*hp.add(i) * alpha) as f32;
        i += 1;
    }
    _mm256_zeroupper();
}

/// `lo = Half::from_f64(hi * alpha)` bits: rounded f64 multiply, then
/// the f64 → f32 → f16 double rounding of `Half::from_f64`.
#[target_feature(enable = "avx2,fma,f16c")]
pub unsafe fn scale_f64_to_f16(alpha: f64, hi: &[f64], lo: &mut [u16]) {
    let n = lo.len();
    let hp = hi.as_ptr();
    let lp = lo.as_mut_ptr();
    let av = _mm256_set1_pd(alpha);
    let mut i = 0usize;
    while i + 4 <= n {
        let t = _mm256_mul_pd(_mm256_loadu_pd(hp.add(i)), av);
        let ps = _mm256_cvtpd_ps(t);
        _mm_storel_epi64(lp.add(i) as *mut __m128i, _mm_cvtps_ph::<ROUND_NE>(ps));
        i += 4;
    }
    while i < n {
        *lp.add(i) = f32_to_f16_bits((*hp.add(i) * alpha) as f32);
        i += 1;
    }
    _mm256_zeroupper();
}

// ---------------------------------------------------------------------------
// ELL slab segment: `yb[i] = fma(widen(vs[i]), x[cs[i]], yb[i])` for a
// contiguous run of rows of one slab — the inner loop of every blocked
// SpMV traversal. Four (f64) / eight (f32) rows advance per iteration,
// each lane holding its own row's accumulator, so per-row rounding
// order is untouched.
// ---------------------------------------------------------------------------

macro_rules! ell_slab_into_f64 {
    ($name:ident, $S:ty, $ld:ident, $wide:ident) => {
        /// # Safety
        /// `vs.len() >= yb.len()`, `cs.len() >= yb.len()`, every
        /// `cs[i] < x.len()`, and `x.len() <= i32::MAX`.
        #[target_feature(enable = "avx2,fma,f16c")]
        pub unsafe fn $name(vs: &[$S], cs: &[u32], x: &[f64], yb: &mut [f64]) {
            let len = yb.len();
            let xp = x.as_ptr();
            let vp = vs.as_ptr();
            let cp = cs.as_ptr();
            let yp = yb.as_mut_ptr();
            let pf = pf_dist();
            let mut i = 0usize;
            while i + 4 <= len {
                if pf > 0 && i + pf + 4 <= len {
                    prefetch_gather_targets(xp as *const u8, cp, i + pf, 8, 4);
                }
                let idx = _mm_loadu_si128(cp.add(i) as *const __m128i);
                let xv = _mm256_i32gather_pd::<8>(xp, idx);
                let vv = $ld(vp.add(i));
                let yv = _mm256_loadu_pd(yp.add(i));
                _mm256_storeu_pd(yp.add(i), _mm256_fmadd_pd(vv, xv, yv));
                i += 4;
            }
            while i < len {
                let c = *cp.add(i) as usize;
                *yp.add(i) = $wide(*vp.add(i)).mul_add(*xp.add(c), *yp.add(i));
                i += 1;
            }
            _mm256_zeroupper();
        }
    };
}

macro_rules! ell_slab_into_f32 {
    ($name:ident, $S:ty, $ld:ident, $wide:ident) => {
        /// # Safety
        /// `vs.len() >= yb.len()`, `cs.len() >= yb.len()`, every
        /// `cs[i] < x.len()`, and `x.len() <= i32::MAX`.
        #[target_feature(enable = "avx2,fma,f16c")]
        pub unsafe fn $name(vs: &[$S], cs: &[u32], x: &[f32], yb: &mut [f32]) {
            let len = yb.len();
            let xp = x.as_ptr();
            let vp = vs.as_ptr();
            let cp = cs.as_ptr();
            let yp = yb.as_mut_ptr();
            let pf = pf_dist();
            let mut i = 0usize;
            while i + 8 <= len {
                if pf > 0 && i + pf + 8 <= len {
                    prefetch_gather_targets(xp as *const u8, cp, i + pf, 4, 8);
                }
                let idx = _mm256_loadu_si256(cp.add(i) as *const __m256i);
                let xv = _mm256_i32gather_ps::<4>(xp, idx);
                let vv = $ld(vp.add(i));
                let yv = _mm256_loadu_ps(yp.add(i));
                _mm256_storeu_ps(yp.add(i), _mm256_fmadd_ps(vv, xv, yv));
                i += 8;
            }
            while i < len {
                let c = *cp.add(i) as usize;
                *yp.add(i) = $wide(*vp.add(i)).mul_add(*xp.add(c), *yp.add(i));
                i += 1;
            }
            _mm256_zeroupper();
        }
    };
}

ell_slab_into_f64!(ell_slab_f64_f64, f64, ld4_f64, w64_f64);
ell_slab_into_f64!(ell_slab_f32_f64, f32, ld4_f64_from_f32, w64_f32);
ell_slab_into_f64!(ell_slab_f16_f64, u16, ld4_f64_from_f16, w64_f16);
ell_slab_into_f32!(ell_slab_f32_f32, f32, ld8_f32, w32_f32);
ell_slab_into_f32!(ell_slab_f16_f32, u16, ld8_f32_from_f16, w32_f16);
ell_slab_into_f32!(ell_slab_f64_f32, f64, ld8_f32_from_f64, w32_f64);

// ---------------------------------------------------------------------------
// ELL row-list SpMV: full row dots (ascending slab order) for an
// explicit list of rows — the overlap-split traversal. One lane per
// row; values, column indices, and `x` entries are gathered per slab.
// ---------------------------------------------------------------------------

macro_rules! ell_rows_spmv_into_f64 {
    ($name:ident, $S:ty, $g4:ident, $wide:ident) => {
        /// # Safety
        /// `values`/`col_idx` hold `width * nrows` entries with every
        /// column `< x.len()`; every row in `rows` addresses a valid
        /// `y` element no other thread touches concurrently; all slot
        /// and column indices fit in `i32`.
        #[target_feature(enable = "avx2,fma,f16c")]
        pub unsafe fn $name(
            values: &[$S],
            col_idx: &[u32],
            nrows: usize,
            width: usize,
            rows: &[u32],
            x: &[f64],
            y: *mut f64,
        ) {
            let vp = values.as_ptr();
            let cp = col_idx.as_ptr();
            let xp = x.as_ptr();
            let rp = rows.as_ptr();
            let stride = _mm_set1_epi32(nrows as i32);
            let mut j = 0usize;
            while j + 4 <= rows.len() {
                let rowv = _mm_loadu_si128(rp.add(j) as *const __m128i);
                let mut slot = rowv;
                let mut acc = _mm256_setzero_pd();
                for _k in 0..width {
                    let cols = _mm_i32gather_epi32::<4>(cp as *const i32, slot);
                    let xv = _mm256_i32gather_pd::<8>(xp, cols);
                    let vv = $g4(vp, slot);
                    acc = _mm256_fmadd_pd(vv, xv, acc);
                    slot = _mm_add_epi32(slot, stride);
                }
                let mut lanes = [0.0f64; 4];
                _mm256_storeu_pd(lanes.as_mut_ptr(), acc);
                for (t, &l) in lanes.iter().enumerate() {
                    *y.add(*rp.add(j + t) as usize) = l;
                }
                j += 4;
            }
            for &iw in &rows[j..] {
                let i = iw as usize;
                let mut acc = 0.0f64;
                for k in 0..width {
                    let slot = k * nrows + i;
                    acc = $wide(*vp.add(slot)).mul_add(*xp.add(*cp.add(slot) as usize), acc);
                }
                *y.add(i) = acc;
            }
            _mm256_zeroupper();
        }
    };
}

macro_rules! ell_rows_spmv_into_f32 {
    ($name:ident, $S:ty, $g8:ident, $wide:ident) => {
        /// # Safety
        /// Same contract as the f64-accumulating variant.
        #[target_feature(enable = "avx2,fma,f16c")]
        pub unsafe fn $name(
            values: &[$S],
            col_idx: &[u32],
            nrows: usize,
            width: usize,
            rows: &[u32],
            x: &[f32],
            y: *mut f32,
        ) {
            let vp = values.as_ptr();
            let cp = col_idx.as_ptr();
            let xp = x.as_ptr();
            let rp = rows.as_ptr();
            let stride = _mm256_set1_epi32(nrows as i32);
            let mut j = 0usize;
            while j + 8 <= rows.len() {
                let rowv = _mm256_loadu_si256(rp.add(j) as *const __m256i);
                let mut slot = rowv;
                let mut acc = _mm256_setzero_ps();
                for _k in 0..width {
                    let cols = _mm256_i32gather_epi32::<4>(cp as *const i32, slot);
                    let xv = _mm256_i32gather_ps::<4>(xp, cols);
                    let vv = $g8(vp, slot);
                    acc = _mm256_fmadd_ps(vv, xv, acc);
                    slot = _mm256_add_epi32(slot, stride);
                }
                let mut lanes = [0.0f32; 8];
                _mm256_storeu_ps(lanes.as_mut_ptr(), acc);
                for (t, &l) in lanes.iter().enumerate() {
                    *y.add(*rp.add(j + t) as usize) = l;
                }
                j += 8;
            }
            for &iw in &rows[j..] {
                let i = iw as usize;
                let mut acc = 0.0f32;
                for k in 0..width {
                    let slot = k * nrows + i;
                    acc = $wide(*vp.add(slot)).mul_add(*xp.add(*cp.add(slot) as usize), acc);
                }
                *y.add(i) = acc;
            }
            _mm256_zeroupper();
        }
    };
}

ell_rows_spmv_into_f64!(ell_rows_f64_f64, f64, g4_f64, w64_f64);
ell_rows_spmv_into_f64!(ell_rows_f32_f64, f32, g4_f64_from_f32, w64_f32);
ell_rows_spmv_into_f64!(ell_rows_f16_f64, u16, g4_f64_from_f16, w64_f16);
ell_rows_spmv_into_f32!(ell_rows_f32_f32, f32, g8_f32, w32_f32);
ell_rows_spmv_into_f32!(ell_rows_f16_f32, u16, g8_f32_from_f16, w32_f16);
ell_rows_spmv_into_f32!(ell_rows_f64_f32, f64, g8_f32_from_f64, w32_f64);

// ---------------------------------------------------------------------------
// ELL multicolor relaxation: `x[i] += (r[i] - row_dot(i)) / diag[i]`
// for an independent set of rows. Identical lane-wise sequence to the
// scalar relax (ascending-k FMA dot, one sub, one IEEE-rounded divide,
// one add), so results are bit-identical.
// ---------------------------------------------------------------------------

macro_rules! ell_relax_into_f64 {
    ($name:ident, $S:ty, $g4:ident, $wide:ident) => {
        /// # Safety
        /// Contract of the row-list SpMV, plus: `diag` holds `nrows`
        /// entries, `r` holds at least `nrows`, `rows` is an
        /// independent set (no listed row's columns — other than
        /// itself — are written concurrently), and `x` is valid for
        /// reads of every column and writes at every listed row.
        #[allow(clippy::too_many_arguments)]
        #[target_feature(enable = "avx2,fma,f16c")]
        pub unsafe fn $name(
            values: &[$S],
            col_idx: &[u32],
            diag: &[$S],
            nrows: usize,
            width: usize,
            rows: &[u32],
            r: &[f64],
            x: *mut f64,
        ) {
            let vp = values.as_ptr();
            let cp = col_idx.as_ptr();
            let dp = diag.as_ptr();
            let rp = r.as_ptr();
            let rop = rows.as_ptr();
            let xr = x as *const f64;
            let stride = _mm_set1_epi32(nrows as i32);
            let mut j = 0usize;
            while j + 4 <= rows.len() {
                let rowv = _mm_loadu_si128(rop.add(j) as *const __m128i);
                let mut slot = rowv;
                let mut acc = _mm256_setzero_pd();
                for _k in 0..width {
                    let cols = _mm_i32gather_epi32::<4>(cp as *const i32, slot);
                    let xv = _mm256_i32gather_pd::<8>(xr, cols);
                    let vv = $g4(vp, slot);
                    acc = _mm256_fmadd_pd(vv, xv, acc);
                    slot = _mm_add_epi32(slot, stride);
                }
                let rv = _mm256_i32gather_pd::<8>(rp, rowv);
                let dv = $g4(dp, rowv);
                let xv = _mm256_i32gather_pd::<8>(xr, rowv);
                let res = _mm256_add_pd(xv, _mm256_div_pd(_mm256_sub_pd(rv, acc), dv));
                let mut lanes = [0.0f64; 4];
                _mm256_storeu_pd(lanes.as_mut_ptr(), res);
                for (t, &l) in lanes.iter().enumerate() {
                    *x.add(*rop.add(j + t) as usize) = l;
                }
                j += 4;
            }
            for &iw in &rows[j..] {
                let i = iw as usize;
                let mut acc = 0.0f64;
                for k in 0..width {
                    let slot = k * nrows + i;
                    acc = $wide(*vp.add(slot)).mul_add(*xr.add(*cp.add(slot) as usize), acc);
                }
                *x.add(i) += (*rp.add(i) - acc) / $wide(*dp.add(i));
            }
            _mm256_zeroupper();
        }
    };
}

macro_rules! ell_relax_into_f32 {
    ($name:ident, $S:ty, $g8:ident, $wide:ident) => {
        /// # Safety
        /// Same contract as the f64-accumulating variant.
        #[allow(clippy::too_many_arguments)]
        #[target_feature(enable = "avx2,fma,f16c")]
        pub unsafe fn $name(
            values: &[$S],
            col_idx: &[u32],
            diag: &[$S],
            nrows: usize,
            width: usize,
            rows: &[u32],
            r: &[f32],
            x: *mut f32,
        ) {
            let vp = values.as_ptr();
            let cp = col_idx.as_ptr();
            let dp = diag.as_ptr();
            let rp = r.as_ptr();
            let rop = rows.as_ptr();
            let xr = x as *const f32;
            let stride = _mm256_set1_epi32(nrows as i32);
            let mut j = 0usize;
            while j + 8 <= rows.len() {
                let rowv = _mm256_loadu_si256(rop.add(j) as *const __m256i);
                let mut slot = rowv;
                let mut acc = _mm256_setzero_ps();
                for _k in 0..width {
                    let cols = _mm256_i32gather_epi32::<4>(cp as *const i32, slot);
                    let xv = _mm256_i32gather_ps::<4>(xr, cols);
                    let vv = $g8(vp, slot);
                    acc = _mm256_fmadd_ps(vv, xv, acc);
                    slot = _mm256_add_epi32(slot, stride);
                }
                let rv = _mm256_i32gather_ps::<4>(rp, rowv);
                let dv = $g8(dp, rowv);
                let xv = _mm256_i32gather_ps::<4>(xr, rowv);
                let res = _mm256_add_ps(xv, _mm256_div_ps(_mm256_sub_ps(rv, acc), dv));
                let mut lanes = [0.0f32; 8];
                _mm256_storeu_ps(lanes.as_mut_ptr(), res);
                for (t, &l) in lanes.iter().enumerate() {
                    *x.add(*rop.add(j + t) as usize) = l;
                }
                j += 8;
            }
            for &iw in &rows[j..] {
                let i = iw as usize;
                let mut acc = 0.0f32;
                for k in 0..width {
                    let slot = k * nrows + i;
                    acc = $wide(*vp.add(slot)).mul_add(*xr.add(*cp.add(slot) as usize), acc);
                }
                *x.add(i) += (*rp.add(i) - acc) / $wide(*dp.add(i));
            }
            _mm256_zeroupper();
        }
    };
}

ell_relax_into_f64!(ell_relax_f64_f64, f64, g4_f64, w64_f64);
ell_relax_into_f64!(ell_relax_f32_f64, f32, g4_f64_from_f32, w64_f32);
ell_relax_into_f64!(ell_relax_f16_f64, u16, g4_f64_from_f16, w64_f16);
ell_relax_into_f32!(ell_relax_f32_f32, f32, g8_f32, w32_f32);
ell_relax_into_f32!(ell_relax_f16_f32, u16, g8_f32_from_f16, w32_f16);
ell_relax_into_f32!(ell_relax_f64_f32, f64, g8_f32_from_f64, w32_f64);
