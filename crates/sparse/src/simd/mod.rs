//! Runtime-dispatched SIMD primitives for the split-precision motif
//! kernels.
//!
//! The dispatch contract:
//!
//! * CPU features (AVX2 / FMA / F16C) are detected once and cached in a
//!   [`OnceLock`]; all three must be present for the vector path.
//! * `HPGMXP_SIMD=auto|avx2|scalar` overrides detection: `auto` (or
//!   unset) picks the best supported path, `scalar` forces the portable
//!   reference path, `avx2` demands the vector path and panics if the
//!   CPU lacks it (a silent fallback would invalidate any benchmark
//!   that claims to have measured it).
//! * Tests and benches can force either path in-process via
//!   [`set_level_override`] without touching the environment.
//!
//! Determinism contract: for `Stored == Acc` kernels the vector path is
//! bit-identical to the scalar path over non-NaN data (lanes own whole
//! rows/elements, every lane op is the IEEE correctly-rounded scalar
//! op). Split `(Stored, Acc)` kernels widen exactly in-register, so
//! they too match the scalar sequence bit-for-bit; the existing
//! eps bounds in the proptests remain valid unchanged. The blocked
//! pairwise reduction order of `dot_par` and the per-motif byte
//! counters are not touched by this layer.
//!
//! Every `try_*` kernel returns `false` when dispatch (or a safety
//! precondition) rules the vector path out — callers keep their scalar
//! loop as the fallback arm, which doubles as the reference
//! implementation.

pub mod portable;
#[cfg(target_arch = "x86_64")]
mod x86;

use crate::half::Half;
use crate::scalar::Scalar;
use crate::shared::SharedMut;
use core::any::TypeId;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

/// Which kernel family runtime dispatch selected.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SimdLevel {
    /// Portable scalar reference path.
    Scalar,
    /// AVX2 + FMA + F16C vector path.
    Avx2,
}

impl SimdLevel {
    pub fn name(self) -> &'static str {
        match self {
            SimdLevel::Scalar => "scalar",
            SimdLevel::Avx2 => "avx2",
        }
    }
}

/// CPU features relevant to the vector kernels, as detected at runtime.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CpuFeatures {
    pub avx2: bool,
    pub fma: bool,
    pub f16c: bool,
}

impl CpuFeatures {
    pub fn detect() -> Self {
        #[cfg(target_arch = "x86_64")]
        {
            CpuFeatures {
                avx2: std::arch::is_x86_feature_detected!("avx2"),
                fma: std::arch::is_x86_feature_detected!("fma"),
                f16c: std::arch::is_x86_feature_detected!("f16c"),
            }
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            CpuFeatures::default()
        }
    }

    /// The vector path needs all of AVX2 (gathers), FMA (fused lanes
    /// matching `mul_add`), and F16C (fp16 converts).
    pub fn supports_avx2_path(self) -> bool {
        self.avx2 && self.fma && self.f16c
    }

    /// Compact rendering for host metadata, e.g. `"avx2+fma+f16c"`.
    pub fn summary(self) -> String {
        let mut parts = Vec::new();
        if self.avx2 {
            parts.push("avx2");
        }
        if self.fma {
            parts.push("fma");
        }
        if self.f16c {
            parts.push("f16c");
        }
        if parts.is_empty() {
            "none".to_string()
        } else {
            parts.join("+")
        }
    }
}

struct Resolved {
    features: CpuFeatures,
    level: SimdLevel,
    env: Option<String>,
}

fn resolved() -> &'static Resolved {
    static RESOLVED: OnceLock<Resolved> = OnceLock::new();
    RESOLVED.get_or_init(|| {
        let features = CpuFeatures::detect();
        let env = std::env::var("HPGMXP_SIMD").ok().filter(|v| !v.is_empty());
        let level = match env.as_deref() {
            None | Some("auto") => {
                if features.supports_avx2_path() {
                    SimdLevel::Avx2
                } else {
                    SimdLevel::Scalar
                }
            }
            Some("scalar") => SimdLevel::Scalar,
            Some("avx2") => {
                assert!(
                    features.supports_avx2_path(),
                    "HPGMXP_SIMD=avx2 requested but CPU features are {} (need avx2+fma+f16c)",
                    features.summary()
                );
                SimdLevel::Avx2
            }
            Some(other) => {
                panic!("HPGMXP_SIMD={other:?} not understood (expected auto|avx2|scalar)")
            }
        };
        Resolved { features, level, env }
    })
}

/// In-process dispatch override: 0 = none, 1 = scalar, 2 = avx2.
/// Checked before the environment-resolved level so tests and benches
/// can exercise both paths in one run.
static FORCED: AtomicU8 = AtomicU8::new(0);

/// The detected CPU feature set (cached).
pub fn features() -> CpuFeatures {
    resolved().features
}

/// The `HPGMXP_SIMD` value the dispatch was resolved from, if set.
pub fn env_override() -> Option<&'static str> {
    resolved().env.as_deref()
}

/// The kernel family every `try_*` entry point will use right now.
pub fn level() -> SimdLevel {
    match FORCED.load(Ordering::Relaxed) {
        1 => SimdLevel::Scalar,
        2 => SimdLevel::Avx2,
        _ => resolved().level,
    }
}

/// Force a dispatch level in-process (tests/benches), or `None` to
/// return to the environment-resolved level. Panics if `Avx2` is
/// forced on a CPU without the features. Global: callers that flip it
/// concurrently must serialize (the test suites hold a mutex).
pub fn set_level_override(level: Option<SimdLevel>) {
    let v = match level {
        None => 0,
        Some(SimdLevel::Scalar) => 1,
        Some(SimdLevel::Avx2) => {
            assert!(
                CpuFeatures::detect().supports_avx2_path(),
                "cannot force the avx2 path: CPU features are {}",
                CpuFeatures::detect().summary()
            );
            2
        }
    };
    FORCED.store(v, Ordering::Relaxed);
}

/// Hardware gathers sign-extend i32 element indices, so any slice we
/// gather from must be indexable by i32.
const MAX_GATHER_LEN: usize = i32::MAX as usize;

// ---------------------------------------------------------------------------
// TypeId-based slice views: resolve the generic `Scalar` parameter to a
// concrete lane type on stable Rust. `Half` is `#[repr(transparent)]`
// over `u16`, so a `&[Half]` reinterprets soundly as `&[u16]`.
// ---------------------------------------------------------------------------

#[inline(always)]
fn is<S: Scalar, T: 'static>() -> bool {
    TypeId::of::<S>() == TypeId::of::<T>()
}

macro_rules! slice_view {
    ($name:ident, $name_mut:ident, $Marker:ty, $Lane:ty) => {
        #[inline(always)]
        fn $name<S: Scalar>(x: &[S]) -> Option<&[$Lane]> {
            if is::<S, $Marker>() {
                // SAFETY: S is exactly $Marker, whose layout is $Lane
                // (identical type, or repr(transparent) for Half/u16).
                Some(unsafe { core::slice::from_raw_parts(x.as_ptr() as *const $Lane, x.len()) })
            } else {
                None
            }
        }
        #[inline(always)]
        fn $name_mut<S: Scalar>(x: &mut [S]) -> Option<&mut [$Lane]> {
            if is::<S, $Marker>() {
                // SAFETY: as above, and the &mut borrow is carried over.
                Some(unsafe {
                    core::slice::from_raw_parts_mut(x.as_mut_ptr() as *mut $Lane, x.len())
                })
            } else {
                None
            }
        }
    };
}

slice_view!(as_f64s, as_f64s_mut, f64, f64);
slice_view!(as_f32s, as_f32s_mut, f32, f32);
slice_view!(as_f16s, as_f16s_mut, Half, u16);

// ---------------------------------------------------------------------------
// Batch conversions. These always produce the portable path's bits for
// non-NaN inputs regardless of dispatch level.
// ---------------------------------------------------------------------------

macro_rules! dispatch_convert {
    ($name:ident, $Src:ty, $Dst:ty) => {
        #[doc = concat!("Batch `", stringify!($name), "`; dispatch-independent bits for non-NaN data.")]
        pub fn $name(src: &[$Src], dst: &mut [$Dst]) {
            assert_eq!(src.len(), dst.len());
            #[cfg(target_arch = "x86_64")]
            if level() == SimdLevel::Avx2 {
                // SAFETY: features verified by `level()`; slices are
                // equal-length and contiguous.
                unsafe { x86::$name(src, dst) };
                return;
            }
            portable::$name(src, dst);
        }
    };
}

dispatch_convert!(widen_f16_f32, u16, f32);
dispatch_convert!(narrow_f32_f16, f32, u16);
dispatch_convert!(widen_f32_f64, f32, f64);
dispatch_convert!(narrow_f64_f32, f64, f32);
dispatch_convert!(widen_f16_f64, u16, f64);
dispatch_convert!(narrow_f64_f16, f64, u16);

/// Batch `dst[i] = Dst::from_scalar(src[i])` for every shipped
/// `(Src, Dst)` precision pair. Returns `false` for combinations with
/// no batch kernel (the caller runs its scalar loop).
pub fn convert_slice_fast<Src: Scalar, Dst: Scalar>(src: &[Src], dst: &mut [Dst]) -> bool {
    assert_eq!(src.len(), dst.len());
    // Identity: plain copy (for non-NaN data `from_f64(to_f64(v))` is
    // the identity on every shipped scalar).
    if is::<Src, f64>() && is::<Dst, f64>() {
        as_f64s_mut(dst).unwrap().copy_from_slice(as_f64s(src).unwrap());
        return true;
    }
    if is::<Src, f32>() && is::<Dst, f32>() {
        as_f32s_mut(dst).unwrap().copy_from_slice(as_f32s(src).unwrap());
        return true;
    }
    if is::<Src, Half>() && is::<Dst, Half>() {
        as_f16s_mut(dst).unwrap().copy_from_slice(as_f16s(src).unwrap());
        return true;
    }
    if let (Some(s), Some(d)) = (as_f16s(src), as_f32s_mut(dst)) {
        widen_f16_f32(s, d);
        return true;
    }
    if let (Some(s), Some(d)) = (as_f32s(src), as_f16s_mut(dst)) {
        narrow_f32_f16(s, d);
        return true;
    }
    if let (Some(s), Some(d)) = (as_f32s(src), as_f64s_mut(dst)) {
        widen_f32_f64(s, d);
        return true;
    }
    if let (Some(s), Some(d)) = (as_f64s(src), as_f32s_mut(dst)) {
        narrow_f64_f32(s, d);
        return true;
    }
    if let (Some(s), Some(d)) = (as_f16s(src), as_f64s_mut(dst)) {
        widen_f16_f64(s, d);
        return true;
    }
    if let (Some(s), Some(d)) = (as_f64s(src), as_f16s_mut(dst)) {
        narrow_f64_f16(s, d);
        return true;
    }
    false
}

// ---------------------------------------------------------------------------
// Streaming BLAS-1 entry points.
// ---------------------------------------------------------------------------

/// Vectorized `y[i] = alpha.mul_add(x[i], y[i])` over `y.len()`
/// elements (uniform precision). Bit-identical to the scalar loop.
pub fn try_axpy<S: Scalar>(alpha: S, x: &[S], y: &mut [S]) -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        if level() != SimdLevel::Avx2 || x.len() < y.len() {
            return false;
        }
        if let Some(yv) = as_f64s_mut(y) {
            let n = yv.len();
            // SAFETY: avx2+fma+f16c verified; x covers y's length.
            unsafe { x86::axpy_f64_f64(alpha.to_f64(), &as_f64s(x).unwrap()[..n], yv) };
            return true;
        }
        if let Some(yv) = as_f32s_mut(y) {
            let n = yv.len();
            // SAFETY: as above.
            unsafe { x86::axpy_f32_f32(alpha.to_f64() as f32, &as_f32s(x).unwrap()[..n], yv) };
            return true;
        }
        false
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        let _ = (alpha, x, y);
        false
    }
}

/// Vectorized `y[i] = alpha.mul_add(Acc::from_scalar(x[i]), y[i])`:
/// the widening axpy of `axpy_acc` / `axpy_lo_into_f64`.
pub fn try_axpy_acc<Lo: Scalar, Acc: Scalar>(alpha: Acc, x: &[Lo], y: &mut [Acc]) -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        if level() != SimdLevel::Avx2 || x.len() < y.len() {
            return false;
        }
        if let Some(yv) = as_f64s_mut(y) {
            let a = alpha.to_f64();
            let n = yv.len();
            // SAFETY (all arms): features verified; x covers y's length.
            if let Some(xv) = as_f64s(x) {
                unsafe { x86::axpy_f64_f64(a, &xv[..n], yv) };
                return true;
            }
            if let Some(xv) = as_f32s(x) {
                unsafe { x86::axpy_f32_f64(a, &xv[..n], yv) };
                return true;
            }
            if let Some(xv) = as_f16s(x) {
                unsafe { x86::axpy_f16_f64(a, &xv[..n], yv) };
                return true;
            }
            return false;
        }
        if let Some(yv) = as_f32s_mut(y) {
            let a = alpha.to_f64() as f32;
            let n = yv.len();
            if let Some(xv) = as_f32s(x) {
                unsafe { x86::axpy_f32_f32(a, &xv[..n], yv) };
                return true;
            }
            if let Some(xv) = as_f16s(x) {
                unsafe { x86::axpy_f16_f32(a, &xv[..n], yv) };
                return true;
            }
            return false;
        }
        false
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        let _ = (alpha, x, y);
        false
    }
}

/// Vectorized `w[i] = (alpha * x[i]).mul_add(ONE, beta * y[i])` over
/// `w.len()` elements. Bit-identical to the scalar loop (the `* ONE`
/// is exact, so fma(a*x, 1, b*y) == a*x + b*y lane-wise).
pub fn try_waxpby<S: Scalar>(alpha: S, x: &[S], beta: S, y: &[S], w: &mut [S]) -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        if level() != SimdLevel::Avx2 || x.len() < w.len() || y.len() < w.len() {
            return false;
        }
        if let Some(wv) = as_f64s_mut(w) {
            let n = wv.len();
            // SAFETY: features verified; x and y cover w's length.
            unsafe {
                x86::waxpby_f64(
                    alpha.to_f64(),
                    &as_f64s(x).unwrap()[..n],
                    beta.to_f64(),
                    &as_f64s(y).unwrap()[..n],
                    wv,
                )
            };
            return true;
        }
        if let Some(wv) = as_f32s_mut(w) {
            let n = wv.len();
            // SAFETY: as above.
            unsafe {
                x86::waxpby_f32(
                    alpha.to_f64() as f32,
                    &as_f32s(x).unwrap()[..n],
                    beta.to_f64() as f32,
                    &as_f32s(y).unwrap()[..n],
                    wv,
                )
            };
            return true;
        }
        false
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        let _ = (alpha, x, beta, y, w);
        false
    }
}

/// Vectorized `x[i] *= alpha`. Bit-identical to the scalar loop.
pub fn try_scal<S: Scalar>(alpha: S, x: &mut [S]) -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        if level() != SimdLevel::Avx2 {
            return false;
        }
        if let Some(xv) = as_f64s_mut(x) {
            // SAFETY: features verified.
            unsafe { x86::scal_f64(alpha.to_f64(), xv) };
            return true;
        }
        if let Some(xv) = as_f32s_mut(x) {
            // SAFETY: features verified.
            unsafe { x86::scal_f32(alpha.to_f64() as f32, xv) };
            return true;
        }
        false
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        let _ = (alpha, x);
        false
    }
}

/// Vectorized `lo[i] = Lo::from_f64(hi[i] * alpha)`: the narrowing
/// scale of `scale_f64_into_lo`.
pub fn try_scale_narrow<Lo: Scalar>(alpha: f64, hi: &[f64], lo: &mut [Lo]) -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        if level() != SimdLevel::Avx2 || hi.len() < lo.len() {
            return false;
        }
        let n = lo.len();
        // SAFETY (all arms): features verified; hi covers lo's length.
        if let Some(lv) = as_f64s_mut(lo) {
            unsafe { x86::scale_f64_to_f64(alpha, &hi[..n], lv) };
            return true;
        }
        if let Some(lv) = as_f32s_mut(lo) {
            unsafe { x86::scale_f64_to_f32(alpha, &hi[..n], lv) };
            return true;
        }
        if let Some(lv) = as_f16s_mut(lo) {
            unsafe { x86::scale_f64_to_f16(alpha, &hi[..n], lv) };
            return true;
        }
        false
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        let _ = (alpha, hi, lo);
        false
    }
}

// ---------------------------------------------------------------------------
// ELL kernel entry points.
// ---------------------------------------------------------------------------

/// Vectorized slab segment `yb[i] = fma(widen(vs[i]), x[cs[i]], yb[i])`
/// — the inner loop of the column-major ELL SpMV traversals. Safe: the
/// column indices are bounds-checked here (one cheap linear scan that
/// also warms the index cache line stream).
pub fn try_ell_slab_fma<S: Scalar, Acc: Scalar>(
    vs: &[S],
    cs: &[u32],
    x: &[Acc],
    yb: &mut [Acc],
) -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        if level() != SimdLevel::Avx2 {
            return false;
        }
        let len = yb.len();
        if vs.len() < len || cs.len() < len || x.len() > MAX_GATHER_LEN {
            return false;
        }
        let limit = x.len() as u32;
        if !cs[..len].iter().all(|&c| c < limit) {
            return false;
        }
        if let Some(yv) = as_f64s_mut(yb) {
            let xv = as_f64s(x).unwrap();
            // SAFETY (all arms): features verified; vs/cs cover yb's
            // length; every cs[..len] < x.len() <= i32::MAX.
            if let Some(v) = as_f64s(vs) {
                unsafe { x86::ell_slab_f64_f64(v, cs, xv, yv) };
                return true;
            }
            if let Some(v) = as_f32s(vs) {
                unsafe { x86::ell_slab_f32_f64(v, cs, xv, yv) };
                return true;
            }
            if let Some(v) = as_f16s(vs) {
                unsafe { x86::ell_slab_f16_f64(v, cs, xv, yv) };
                return true;
            }
            return false;
        }
        if let Some(yv) = as_f32s_mut(yb) {
            let xv = as_f32s(x).unwrap();
            if let Some(v) = as_f32s(vs) {
                unsafe { x86::ell_slab_f32_f32(v, cs, xv, yv) };
                return true;
            }
            if let Some(v) = as_f16s(vs) {
                unsafe { x86::ell_slab_f16_f32(v, cs, xv, yv) };
                return true;
            }
            if let Some(v) = as_f64s(vs) {
                unsafe { x86::ell_slab_f64_f32(v, cs, xv, yv) };
                return true;
            }
            return false;
        }
        false
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        let _ = (vs, cs, x, yb);
        false
    }
}

/// Vectorized full-row ELL SpMV for an explicit row list:
/// `y[i] = Σ_k widen(values[k*nrows+i]) * x[col_idx[k*nrows+i]]` with
/// the ascending-`k` FMA order of the scalar path.
///
/// # Safety
/// `values`/`col_idx` must hold at least `width * nrows` entries with
/// every stored column index `< x.len()` (the `EllMatrix` builder
/// guarantees columns `< ncols`); `y` must be valid for writes at
/// every listed row, and no listed row may be written concurrently by
/// another thread. Rows and lengths are checked here; column contents
/// are the caller's contract.
#[allow(clippy::too_many_arguments)]
pub unsafe fn try_ell_rows_spmv<S: Scalar, Acc: Scalar>(
    values: &[S],
    col_idx: &[u32],
    nrows: usize,
    width: usize,
    rows: &[u32],
    x: &[Acc],
    y: *mut Acc,
    y_len: usize,
) -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        if level() != SimdLevel::Avx2 {
            return false;
        }
        let entries = match width.checked_mul(nrows) {
            Some(e) => e,
            None => return false,
        };
        if values.len() < entries
            || col_idx.len() < entries
            || entries > MAX_GATHER_LEN
            || nrows > MAX_GATHER_LEN
            || x.len() > MAX_GATHER_LEN
        {
            return false;
        }
        let row_limit = nrows.min(y_len) as u64;
        if !rows.iter().all(|&i| (i as u64) < row_limit) {
            return false;
        }
        let values = &values[..entries];
        let col_idx = &col_idx[..entries];
        if let Some(xv) = as_f64s(x) {
            let yp = y as *mut f64;
            // SAFETY (all arms): features verified; slot indices stay
            // below `entries <= i32::MAX`; rows validated above;
            // column contents in-bounds by the caller's contract.
            if let Some(v) = as_f64s(values) {
                unsafe { x86::ell_rows_f64_f64(v, col_idx, nrows, width, rows, xv, yp) };
                return true;
            }
            if let Some(v) = as_f32s(values) {
                unsafe { x86::ell_rows_f32_f64(v, col_idx, nrows, width, rows, xv, yp) };
                return true;
            }
            if let Some(v) = as_f16s(values) {
                unsafe { x86::ell_rows_f16_f64(v, col_idx, nrows, width, rows, xv, yp) };
                return true;
            }
            return false;
        }
        if let Some(xv) = as_f32s(x) {
            let yp = y as *mut f32;
            if let Some(v) = as_f32s(values) {
                unsafe { x86::ell_rows_f32_f32(v, col_idx, nrows, width, rows, xv, yp) };
                return true;
            }
            if let Some(v) = as_f16s(values) {
                unsafe { x86::ell_rows_f16_f32(v, col_idx, nrows, width, rows, xv, yp) };
                return true;
            }
            if let Some(v) = as_f64s(values) {
                unsafe { x86::ell_rows_f64_f32(v, col_idx, nrows, width, rows, xv, yp) };
                return true;
            }
            return false;
        }
        false
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        let _ = (values, col_idx, nrows, width, rows, x, y, y_len);
        false
    }
}

/// Vectorized multicolor Gauss-Seidel relaxation over an independent
/// row set: `x[i] += (r[i] - row_dot(i)) / diag[i]` with the scalar
/// path's exact per-row arithmetic sequence.
///
/// # Safety
/// Contract of [`try_ell_rows_spmv`] for `values`/`col_idx`/column
/// contents (against `xs.len()`), plus: `rows` must be an independent
/// set under the matrix sparsity (no listed row reads another listed
/// row's entry), and no other thread may touch the listed rows of
/// `xs` concurrently. Rows, `diag`, `r`, and lengths are checked here.
#[allow(clippy::too_many_arguments)]
pub unsafe fn try_ell_relax_rows<S: Scalar, Acc: Scalar>(
    values: &[S],
    col_idx: &[u32],
    diag: &[S],
    nrows: usize,
    width: usize,
    rows: &[u32],
    r: &[Acc],
    xs: &SharedMut<Acc>,
) -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        if level() != SimdLevel::Avx2 {
            return false;
        }
        let entries = match width.checked_mul(nrows) {
            Some(e) => e,
            None => return false,
        };
        if values.len() < entries
            || col_idx.len() < entries
            || diag.len() < nrows
            || entries > MAX_GATHER_LEN
            || nrows > MAX_GATHER_LEN
            || xs.len() > MAX_GATHER_LEN
        {
            return false;
        }
        let row_limit = nrows.min(r.len()).min(xs.len()) as u64;
        if !rows.iter().all(|&i| (i as u64) < row_limit) {
            return false;
        }
        if rows.is_empty() {
            return true;
        }
        let values = &values[..entries];
        let col_idx = &col_idx[..entries];
        // SAFETY: rows non-empty and validated < xs.len(), so index 0
        // is in bounds; the raw pointer aliases only rows this call is
        // entitled to write (caller's independent-set contract).
        let xp = unsafe { xs.get_mut(0) };
        if is::<Acc, f64>() {
            let rv = as_f64s(r).unwrap();
            let xp = xp as *mut f64;
            // SAFETY (all arms): as in `try_ell_rows_spmv`, plus diag
            // covers nrows and r covers every listed row.
            if let Some(v) = as_f64s(values) {
                let d = as_f64s(diag).unwrap();
                unsafe { x86::ell_relax_f64_f64(v, col_idx, d, nrows, width, rows, rv, xp) };
                return true;
            }
            if let Some(v) = as_f32s(values) {
                let d = as_f32s(diag).unwrap();
                unsafe { x86::ell_relax_f32_f64(v, col_idx, d, nrows, width, rows, rv, xp) };
                return true;
            }
            if let Some(v) = as_f16s(values) {
                let d = as_f16s(diag).unwrap();
                unsafe { x86::ell_relax_f16_f64(v, col_idx, d, nrows, width, rows, rv, xp) };
                return true;
            }
            return false;
        }
        if is::<Acc, f32>() {
            let rv = as_f32s(r).unwrap();
            let xp = xp as *mut f32;
            if let Some(v) = as_f32s(values) {
                let d = as_f32s(diag).unwrap();
                unsafe { x86::ell_relax_f32_f32(v, col_idx, d, nrows, width, rows, rv, xp) };
                return true;
            }
            if let Some(v) = as_f16s(values) {
                let d = as_f16s(diag).unwrap();
                unsafe { x86::ell_relax_f16_f32(v, col_idx, d, nrows, width, rows, rv, xp) };
                return true;
            }
            if let Some(v) = as_f64s(values) {
                let d = as_f64s(diag).unwrap();
                unsafe { x86::ell_relax_f64_f32(v, col_idx, d, nrows, width, rows, rv, xp) };
                return true;
            }
            return false;
        }
        false
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        let _ = (values, col_idx, diag, nrows, width, rows, r, xs);
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f16_inputs() -> Vec<u16> {
        // Every finite/infinite bit pattern (NaNs excluded: payload
        // bits legitimately differ between software and hardware).
        (0u16..=u16::MAX)
            .filter(|&b| {
                let exp = (b >> 10) & 0x1f;
                let man = b & 0x3ff;
                !(exp == 0x1f && man != 0)
            })
            .collect()
    }

    fn f32_inputs() -> Vec<f32> {
        let mut v: Vec<f32> = vec![
            0.0,
            -0.0,
            1.0,
            -1.0,
            0.5,
            1.5,
            65504.0,
            65520.0,
            -65520.0,
            1e-8,
            -1e-8,
            6.1e-5,
            5.96e-8,
            2.98e-8,
            3.0e-8,
            1e30,
            -1e30,
            f32::INFINITY,
            f32::NEG_INFINITY,
            f32::MIN_POSITIVE,
            f32::EPSILON,
        ];
        // Deterministic pseudo-random sweep over the f32 bit space.
        let mut s = 0x2545f491u32;
        for _ in 0..4096 {
            s ^= s << 13;
            s ^= s >> 17;
            s ^= s << 5;
            let f = f32::from_bits(s);
            if f.is_nan() {
                continue;
            }
            v.push(f);
        }
        v
    }

    fn f64_inputs() -> Vec<f64> {
        let mut v: Vec<f64> = vec![
            0.0,
            -0.0,
            1.0,
            -1.0,
            1e300,
            -1e300,
            1e-300,
            65519.999,
            65520.0,
            65520.0001,
            f64::INFINITY,
            f64::NEG_INFINITY,
            2.0f64.powi(-150),
        ];
        let mut s = 0x9e3779b97f4a7c15u64;
        for _ in 0..4096 {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            let f = f64::from_bits(s);
            if f.is_nan() {
                continue;
            }
            v.push(f);
        }
        v
    }

    /// The six vector converters must reproduce the portable reference
    /// bit-for-bit over non-NaN inputs, at every alignment offset.
    #[test]
    fn x86_converters_match_portable_bitwise() {
        if !CpuFeatures::detect().supports_avx2_path() {
            eprintln!("skipping: no avx2+fma+f16c on this host");
            return;
        }
        macro_rules! check {
            ($src:expr, $Dst:ty, $f:ident) => {
                let src = $src;
                for off in 0..3usize {
                    let s = &src[off.min(src.len())..];
                    let mut a: Vec<$Dst> = vec![Default::default(); s.len()];
                    let mut b: Vec<$Dst> = vec![Default::default(); s.len()];
                    portable::$f(s, &mut a);
                    unsafe { x86::$f(s, &mut b) };
                    for (i, (x, y)) in a.iter().zip(b.iter()).enumerate() {
                        assert_eq!(
                            x.to_bits(),
                            y.to_bits(),
                            "{} lane {i} (offset {off}): portable {x:?} vs x86 {y:?}",
                            stringify!($f)
                        );
                    }
                }
            };
        }
        trait Bits {
            type B: PartialEq + core::fmt::Debug;
            fn to_bits(&self) -> Self::B;
        }
        impl Bits for u16 {
            type B = u16;
            fn to_bits(&self) -> u16 {
                *self
            }
        }
        impl Bits for f32 {
            type B = u32;
            fn to_bits(&self) -> u32 {
                f32::to_bits(*self)
            }
        }
        impl Bits for f64 {
            type B = u64;
            fn to_bits(&self) -> u64 {
                f64::to_bits(*self)
            }
        }
        check!(f16_inputs(), f32, widen_f16_f32);
        check!(f16_inputs(), f64, widen_f16_f64);
        check!(f32_inputs(), u16, narrow_f32_f16);
        check!(f32_inputs(), f64, widen_f32_f64);
        check!(f64_inputs(), f32, narrow_f64_f32);
        check!(f64_inputs(), u16, narrow_f64_f16);
    }

    #[test]
    fn feature_summary_renders() {
        assert_eq!(CpuFeatures::default().summary(), "none");
        assert_eq!(CpuFeatures { avx2: true, fma: true, f16c: true }.summary(), "avx2+fma+f16c");
    }

    #[test]
    fn convert_slice_fast_covers_all_shipped_pairs() {
        use crate::half::Half;
        let h: Vec<Half> = (0..67).map(|i| Half::from_f32(i as f32 * 0.25 - 4.0)).collect();
        let f: Vec<f32> = (0..67).map(|i| i as f32 * 0.3 - 7.0).collect();
        let d: Vec<f64> = (0..67).map(|i| i as f64 * 0.7 - 11.0).collect();
        macro_rules! pair {
            ($src:expr, $Dst:ty) => {{
                let src = $src;
                let mut fast: Vec<$Dst> = vec![<$Dst as Scalar>::ZERO; src.len()];
                assert!(convert_slice_fast(&src[..], &mut fast));
                for (i, s) in src.iter().enumerate() {
                    let want = <$Dst as Scalar>::from_scalar(*s);
                    assert!(
                        fast[i].to_f64().to_bits() == want.to_f64().to_bits(),
                        "lane {i}: {} vs {}",
                        fast[i].to_f64(),
                        want.to_f64()
                    );
                }
            }};
        }
        pair!(h.clone(), Half);
        pair!(h.clone(), f32);
        pair!(h.clone(), f64);
        pair!(f.clone(), Half);
        pair!(f.clone(), f32);
        pair!(f.clone(), f64);
        pair!(d.clone(), Half);
        pair!(d.clone(), f32);
        pair!(d.clone(), f64);
    }
}
