//! Portable scalar reference implementations of the batch conversion
//! primitives.
//!
//! These are the *definitions* of what the vectorized paths in
//! [`super::x86`] must compute: one IEEE round-to-nearest-even per
//! narrowing element, exact widening. The hardware paths are verified
//! against these functions bit-for-bit over every non-NaN input (see
//! the exhaustive tests in [`super`]); when runtime dispatch selects
//! [`super::SimdLevel::Scalar`] these run directly.

use crate::half::{f16_bits_to_f32, f32_to_f16_bits};

/// Exact fp16 → f32 widening, one element at a time.
pub fn widen_f16_f32(src: &[u16], dst: &mut [f32]) {
    for (d, s) in dst.iter_mut().zip(src.iter()) {
        *d = f16_bits_to_f32(*s);
    }
}

/// f32 → fp16 narrowing (round-to-nearest-even), one element at a time.
pub fn narrow_f32_f16(src: &[f32], dst: &mut [u16]) {
    for (d, s) in dst.iter_mut().zip(src.iter()) {
        *d = f32_to_f16_bits(*s);
    }
}

/// Exact f32 → f64 widening.
pub fn widen_f32_f64(src: &[f32], dst: &mut [f64]) {
    for (d, s) in dst.iter_mut().zip(src.iter()) {
        *d = *s as f64;
    }
}

/// f64 → f32 narrowing (round-to-nearest-even).
pub fn narrow_f64_f32(src: &[f64], dst: &mut [f32]) {
    for (d, s) in dst.iter_mut().zip(src.iter()) {
        *d = *s as f32;
    }
}

/// Exact fp16 → f64 widening (through f32, both steps exact).
pub fn widen_f16_f64(src: &[u16], dst: &mut [f64]) {
    for (d, s) in dst.iter_mut().zip(src.iter()) {
        *d = f16_bits_to_f32(*s) as f64;
    }
}

/// f64 → fp16 narrowing. Deliberately the same double rounding as
/// `Half::from_f64` (f64 → f32 → f16, nearest-even at each step), which
/// is also what the paired `vcvtpd2ps` + `vcvtps2ph` hardware sequence
/// computes.
pub fn narrow_f64_f16(src: &[f64], dst: &mut [u16]) {
    for (d, s) in dst.iter_mut().zip(src.iter()) {
        *d = f32_to_f16_bits(*s as f32);
    }
}
