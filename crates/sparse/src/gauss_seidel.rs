//! Gauss–Seidel sweeps: the benchmark's smoother in all its variants.
//!
//! The HPG-MxP preconditioner is one geometric-multigrid cycle with a
//! *forward* Gauss–Seidel smoother; the HPCG baseline uses *symmetric*
//! Gauss–Seidel. This module implements the sweep in the three forms the
//! paper discusses:
//!
//! * the sequential lexicographic sweep (the mathematical definition),
//! * the reference implementation's two-kernel form — an SpMV with the
//!   strictly-upper part followed by a level-scheduled lower triangular
//!   solve (§3.1, items 1–2) — which is bit-identical to the sequential
//!   sweep but exposes only limited parallelism,
//! * the optimized *multicolor relaxation* form (§3.2.1): one sweep over
//!   the matrix, colors processed in sequence, all rows within a color
//!   updated in parallel.
//!
//! All sweeps use the relaxation update
//! `x_i ← x_i + (r_i − Σ_j a_ij x_j) / a_ii`,
//! which completes forward Gauss–Seidel in a single pass over the matrix
//! (the first optimization of §3.2.1). Ghost entries of `x` (columns
//! `>= nrows`) are frozen inputs during a sweep, exactly as in the MPI
//! benchmark where each rank smooths its subdomain with the latest halo
//! values.

use crate::coloring::Coloring;
use crate::csr::{CsrBuilder, CsrMatrix};
use crate::ell::EllMatrix;
use crate::levels::LevelSchedule;
use crate::scalar::Scalar;
use rayon::prelude::*;

/// Matrix access needed by a Gauss–Seidel sweep, implemented by both
/// storage formats so every variant runs on CSR and ELL alike.
///
/// The trait is parameterized by the **accumulate** precision `Acc` of
/// the sweep vectors, and implemented for matrices of *every* stored
/// precision: values are widened from storage on load and all
/// arithmetic (including the diagonal divide) runs in `Acc`. A
/// same-precision sweep (`Acc ==` stored) is bit-identical to the
/// pre-split kernels; a split sweep (e.g. f32-stored, f64-accumulated)
/// halves the dominant matrix-value traffic — the storage/compute
/// decoupling of the precision-policy engine.
pub trait SweepMatrix<Acc: Scalar>: Sync {
    /// Owned row count.
    fn nrows(&self) -> usize;
    /// Column-space size (owned + ghost).
    fn ncols(&self) -> usize;
    /// Diagonal value of row `i`, widened to the accumulate precision.
    fn diag(&self, i: usize) -> Acc;
    /// `Σ_j a_ij x[j]` over all stored entries of row `i`, accumulated
    /// in `Acc`.
    fn row_dot(&self, i: usize, x: &[Acc]) -> Acc;

    /// Relax a tile of rows from one color class:
    /// `x[i] += (r[i] - row_dot(i)) / diag(i)` for each listed row.
    ///
    /// The default runs the scalar reference sequence; storage formats
    /// with a vector kernel override it (same per-row arithmetic, so
    /// results stay bit-identical).
    ///
    /// # Safety
    /// `rows` must be an independent set of the matrix graph, every
    /// listed row in bounds for `r` and `xs`, and no other thread may
    /// concurrently touch the listed rows of `xs`.
    unsafe fn relax_rows(&self, rows: &[u32], r: &[Acc], xs: &crate::shared::SharedMut<Acc>) {
        for &iw in rows {
            let i = iw as usize;
            // SAFETY: forwarded from the caller — independent set, row
            // in bounds, this tile's rows written by this thread only.
            unsafe {
                let acc = self.row_dot(i, xs.slice());
                *xs.get_mut(i) += (r[i] - acc) / self.diag(i);
            }
        }
    }
}

impl<Stored: Scalar, Acc: Scalar> SweepMatrix<Acc> for CsrMatrix<Stored> {
    fn nrows(&self) -> usize {
        CsrMatrix::nrows(self)
    }
    fn ncols(&self) -> usize {
        CsrMatrix::ncols(self)
    }
    #[inline]
    fn diag(&self, i: usize) -> Acc {
        Acc::from_scalar(CsrMatrix::diag(self, i))
    }
    #[inline]
    fn row_dot(&self, i: usize, x: &[Acc]) -> Acc {
        let (cols, vals) = self.row(i);
        let mut acc = Acc::ZERO;
        for (c, v) in cols.iter().zip(vals.iter()) {
            acc = Acc::from_scalar(*v).mul_add(x[*c as usize], acc);
        }
        acc
    }
}

impl<Stored: Scalar, Acc: Scalar> SweepMatrix<Acc> for EllMatrix<Stored> {
    fn nrows(&self) -> usize {
        EllMatrix::nrows(self)
    }
    fn ncols(&self) -> usize {
        EllMatrix::ncols(self)
    }
    #[inline]
    fn diag(&self, i: usize) -> Acc {
        Acc::from_scalar(self.diagonal()[i])
    }
    #[inline]
    fn row_dot(&self, i: usize, x: &[Acc]) -> Acc {
        let mut acc = Acc::ZERO;
        for k in 0..self.width() {
            let (c, v) = self.entry(i, k);
            acc = Acc::from_scalar(v).mul_add(x[c as usize], acc);
        }
        acc
    }

    unsafe fn relax_rows(&self, rows: &[u32], r: &[Acc], xs: &crate::shared::SharedMut<Acc>) {
        // SAFETY: caller's contract (independent set, bounds, exclusive
        // rows) plus the builder invariant that stored columns are
        // `< ncols <= xs.len()` (asserted by the sweep entry points).
        let done = unsafe {
            crate::simd::try_ell_relax_rows(
                self.values_slab(),
                self.col_idx_slab(),
                self.diagonal(),
                EllMatrix::nrows(self),
                self.width(),
                rows,
                r,
                xs,
            )
        };
        if done {
            return;
        }
        for &iw in rows {
            let i = iw as usize;
            // SAFETY: forwarded from the caller (see trait default).
            unsafe {
                let acc = self.row_dot(i, xs.slice());
                *xs.get_mut(i) += (r[i] - acc) / self.diag(i);
            }
        }
    }
}

/// Relaxation update of one row, in place.
#[inline(always)]
fn relax_row<S: Scalar, M: SweepMatrix<S>>(a: &M, i: usize, r: &[S], x: &mut [S]) {
    let acc = a.row_dot(i, x);
    x[i] += (r[i] - acc) / a.diag(i);
}

/// Sequential forward sweep over rows `0..n` (lexicographic order).
pub fn gs_forward<S: Scalar, M: SweepMatrix<S>>(a: &M, r: &[S], x: &mut [S]) {
    assert!(x.len() >= a.ncols() && r.len() >= a.nrows());
    for i in 0..a.nrows() {
        relax_row(a, i, r, x);
    }
}

/// Sequential backward sweep over rows `n..0`.
pub fn gs_backward<S: Scalar, M: SweepMatrix<S>>(a: &M, r: &[S], x: &mut [S]) {
    assert!(x.len() >= a.ncols() && r.len() >= a.nrows());
    for i in (0..a.nrows()).rev() {
        relax_row(a, i, r, x);
    }
}

/// Symmetric sweep (forward then backward) — the HPCG smoother.
pub fn gs_symmetric<S: Scalar, M: SweepMatrix<S>>(a: &M, r: &[S], x: &mut [S]) {
    gs_forward(a, r, x);
    gs_backward(a, r, x);
}

/// Sequential sweep over an explicit row order (used by tests and by the
/// overlap-split execution in the solver, which sweeps interior rows of
/// a color while the halo is in flight).
pub fn gs_rows_ordered<S: Scalar, M: SweepMatrix<S>>(a: &M, rows: &[u32], r: &[S], x: &mut [S]) {
    assert!(x.len() >= a.ncols());
    for &i in rows {
        relax_row(a, i as usize, r, x);
    }
}

/// Update every row of one color class in parallel (the body of the
/// multicolor sweep; exposed so the solver can interleave colors with
/// halo communication).
///
/// `rows` must be an independent set of `a`'s graph: no two listed rows
/// may be coupled by a stored entry.
pub fn gs_color_class<S: Scalar, M: SweepMatrix<S>>(a: &M, rows: &[u32], r: &[S], x: &mut [S]) {
    assert!(x.len() >= a.ncols() && r.len() >= a.nrows());
    let n = a.nrows();
    for &iw in rows {
        assert!((iw as usize) < n, "row {} out of range {}", iw, n);
    }
    let shared = crate::shared::SharedMut::new(x);
    let xs = &shared;
    rows.par_chunks(GS_TILE).for_each(move |tile| {
        // SAFETY: within one color the rows form an independent set of
        // the matrix graph. Each tile writes only `x[i]` for its own
        // rows `i` (validated `< nrows` above), and reads `x[j]` only
        // for stored columns `j` of its rows — which by the coloring
        // invariant are never rows of the *same* color (other than the
        // row itself). Hence all concurrent writes are disjoint and no
        // element is concurrently read and written.
        unsafe { a.relax_rows(tile, r, xs) };
    });
}

/// Tile length of the parallel color sweep: rows of one color are
/// relaxed in contiguous `GS_TILE`-row work items, so a tile's row
/// indices, residual entries, and gathered `x` segments stay cache
/// resident across the slab walk (and the vector kernel gets whole
/// tiles of lanes).
pub const GS_TILE: usize = 512;

/// Multicolor forward Gauss–Seidel: colors in sequence, rows within a
/// color in parallel (§3.2.1's optimized smoother).
pub fn gs_multicolor<S: Scalar, M: SweepMatrix<S>>(
    a: &M,
    coloring: &Coloring,
    r: &[S],
    x: &mut [S],
) {
    debug_assert_eq!(coloring.color_of.len(), a.nrows());
    for class in &coloring.rows_of {
        gs_color_class(a, class, r, x);
    }
}

/// Multicolor backward sweep (colors in reverse) for a symmetric
/// multicolor smoother.
pub fn gs_multicolor_backward<S: Scalar, M: SweepMatrix<S>>(
    a: &M,
    coloring: &Coloring,
    r: &[S],
    x: &mut [S],
) {
    for class in coloring.rows_of.iter().rev() {
        gs_color_class(a, class, r, x);
    }
}

/// Split a local matrix into `(D + L, U)`: the lower-triangular-plus-
/// diagonal factor and the strictly upper part. Ghost columns belong to
/// `U` (they are frozen inputs of a local sweep). This is the data
/// layout the *reference* implementation feeds to its
/// SpMV-then-triangular-solve Gauss–Seidel (§3.1 item 2).
pub fn split_lower_upper<S: Scalar>(a: &CsrMatrix<S>) -> (CsrMatrix<S>, CsrMatrix<S>) {
    let n = a.nrows();
    let mut lb = CsrBuilder::new(n, n, a.nnz() / 2 + n);
    let mut ub = CsrBuilder::new(n, a.ncols(), a.nnz() / 2 + n);
    for i in 0..n {
        let (cols, vals) = a.row(i);
        let lower: Vec<(u32, S)> = cols
            .iter()
            .zip(vals)
            .filter(|(c, _)| (**c as usize) <= i)
            .map(|(c, v)| (*c, *v))
            .collect();
        // U rows keep a zero diagonal so the CSR invariant (every row
        // carries its diagonal) holds; the value does not contribute.
        let mut upper: Vec<(u32, S)> = vec![(i as u32, S::ZERO)];
        upper.extend(
            cols.iter().zip(vals).filter(|(c, _)| (**c as usize) > i).map(|(c, v)| (*c, *v)),
        );
        lb.push_row(lower);
        ub.push_row(upper);
    }
    (lb.finish(), ub.finish())
}

/// Level-scheduled lower-triangular solve `(D + L) x = rhs`, levels in
/// sequence, rows within a level in parallel.
///
/// Mathematically identical to the sequential forward substitution; the
/// limited level widths of stencil matrices are what §3.1 identifies as
/// the reference implementation's utilization problem.
pub fn sptrsv_lower_level_scheduled<Stored: Scalar, Acc: Scalar>(
    l: &CsrMatrix<Stored>,
    schedule: &LevelSchedule,
    rhs: &[Acc],
    x: &mut [Acc],
) {
    assert!(x.len() >= l.nrows() && rhs.len() >= l.nrows());
    for level in &schedule.levels {
        let shared = crate::shared::SharedMut::new(x);
        let xs = &shared;
        level.par_iter().for_each(move |&iw| {
            let i = iw as usize;
            let (cols, vals) = l.row(i);
            // SAFETY: a row only reads columns `< i` that live in
            // strictly earlier levels (LevelSchedule invariant), so no
            // concurrent read/write aliasing occurs within a level.
            unsafe {
                let xslice = xs.slice();
                let mut acc = Acc::ZERO;
                let mut diag = Acc::ONE;
                for (c, v) in cols.iter().zip(vals.iter()) {
                    if (*c as usize) < i {
                        acc = Acc::from_scalar(*v).mul_add(xslice[*c as usize], acc);
                    } else {
                        diag = Acc::from_scalar(*v);
                    }
                }
                *xs.get_mut(i) = (rhs[i] - acc) / diag;
            }
        });
    }
}

/// The reference implementation's forward Gauss–Seidel for `A z = r`
/// (§3.1): `t = r − U x`, then solve `(D + L) x = t` with the
/// level-scheduled triangular kernel. Produces exactly the sequential
/// forward sweep's result, at the cost of a second pass over the matrix.
pub fn gs_forward_reference<Stored: Scalar, Acc: Scalar>(
    l: &CsrMatrix<Stored>,
    u: &CsrMatrix<Stored>,
    schedule: &LevelSchedule,
    r: &[Acc],
    x: &mut [Acc],
) {
    let n = l.nrows();
    let mut t = vec![Acc::ZERO; n];
    u.spmv(x, &mut t);
    for i in 0..n {
        t[i] = r[i] - t[i];
    }
    sptrsv_lower_level_scheduled(l, schedule, &t, x);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coloring::greedy_coloring;
    use crate::csr::CsrBuilder;

    /// 2D 5-point Laplacian with an extra ghost column per boundary row,
    /// to exercise frozen halo values.
    fn laplacian_2d(nx: usize, ny: usize) -> CsrMatrix<f64> {
        let n = nx * ny;
        let mut b = CsrBuilder::new(n, n, 5 * n);
        for j in 0..ny {
            for i in 0..nx {
                let row = j * nx + i;
                let mut e = Vec::new();
                if j > 0 {
                    e.push(((row - nx) as u32, -1.0));
                }
                if i > 0 {
                    e.push(((row - 1) as u32, -1.0));
                }
                e.push((row as u32, 4.0));
                if i + 1 < nx {
                    e.push(((row + 1) as u32, -1.0));
                }
                if j + 1 < ny {
                    e.push(((row + nx) as u32, -1.0));
                }
                b.push_row(e);
            }
        }
        b.finish()
    }

    fn residual_norm(a: &CsrMatrix<f64>, r: &[f64], x: &[f64]) -> f64 {
        let mut ax = vec![0.0; a.nrows()];
        a.spmv(x, &mut ax);
        r.iter().zip(ax.iter()).map(|(ri, axi)| (ri - axi) * (ri - axi)).sum::<f64>().sqrt()
    }

    #[test]
    fn forward_sweep_reduces_residual() {
        let a = laplacian_2d(8, 8);
        let r: Vec<f64> = (0..64).map(|i| ((i * 7 % 13) as f64) - 6.0).collect();
        let mut x = vec![0.0; 64];
        let r0 = residual_norm(&a, &r, &x);
        gs_forward(&a, &r, &mut x);
        let r1 = residual_norm(&a, &r, &x);
        assert!(r1 < r0 * 0.8, "one sweep must smooth: {} -> {}", r0, r1);
        gs_forward(&a, &r, &mut x);
        assert!(residual_norm(&a, &r, &x) < r1);
    }

    #[test]
    fn repeated_sweeps_converge_to_solution() {
        let a = laplacian_2d(4, 4);
        let x_exact: Vec<f64> = (0..16).map(|i| (i as f64).cos()).collect();
        let mut r = vec![0.0; 16];
        a.spmv(&x_exact, &mut r);
        let mut x = vec![0.0; 16];
        for _ in 0..400 {
            gs_forward(&a, &r, &mut x);
        }
        for (xi, ei) in x.iter().zip(x_exact.iter()) {
            assert!((xi - ei).abs() < 1e-10);
        }
    }

    #[test]
    fn multicolor_matches_color_ordered_sequential() {
        // A multicolor parallel sweep must equal the sequential sweep
        // taken in color order (same update sequence semantics).
        let a = laplacian_2d(6, 5);
        let coloring = greedy_coloring(&a);
        assert!(coloring.verify(&a));
        let r: Vec<f64> = (0..30).map(|i| (i as f64) * 0.1 - 1.0).collect();

        let mut x_par = vec![0.5; 30];
        gs_multicolor(&a, &coloring, &r, &mut x_par);

        let mut x_seq = vec![0.5; 30];
        let order: Vec<u32> = coloring.rows_of.iter().flatten().copied().collect();
        gs_rows_ordered(&a, &order, &r, &mut x_seq);

        for (p, s) in x_par.iter().zip(x_seq.iter()) {
            assert!((p - s).abs() < 1e-14);
        }
    }

    #[test]
    fn reference_two_kernel_path_matches_sequential() {
        let a = laplacian_2d(5, 5);
        let (l, u) = split_lower_upper(&a);
        let schedule = LevelSchedule::build(&a);
        let r: Vec<f64> = (0..25).map(|i| 1.0 + (i % 3) as f64).collect();

        let mut x_ref = vec![0.25; 25];
        gs_forward_reference(&l, &u, &schedule, &r, &mut x_ref);

        let mut x_seq = vec![0.25; 25];
        gs_forward(&a, &r, &mut x_seq);

        for (a_, b_) in x_ref.iter().zip(x_seq.iter()) {
            assert!((a_ - b_).abs() < 1e-13, "{} vs {}", a_, b_);
        }
    }

    #[test]
    fn split_partitions_entries() {
        let a = laplacian_2d(4, 4);
        let (l, u) = split_lower_upper(&a);
        // L keeps diag + strictly lower; U got a structural zero diag.
        assert_eq!(l.nnz() + u.nnz() - a.nrows(), a.nnz());
        let dense_a = a.to_dense();
        let dense_l = l.to_dense();
        let dense_u = u.to_dense();
        for i in 0..16 {
            for j in 0..16 {
                assert!((dense_l[i][j] + dense_u[i][j] - dense_a[i][j]).abs() < 1e-15);
            }
        }
    }

    #[test]
    fn symmetric_sweep_matches_forward_backward() {
        let a = laplacian_2d(5, 4);
        let r: Vec<f64> = (0..20).map(|i| (i as f64).sin()).collect();
        let mut x1 = vec![0.0; 20];
        gs_symmetric(&a, &r, &mut x1);
        let mut x2 = vec![0.0; 20];
        gs_forward(&a, &r, &mut x2);
        gs_backward(&a, &r, &mut x2);
        assert_eq!(x1, x2);
    }

    #[test]
    fn ell_sweep_matches_csr_sweep() {
        let a = laplacian_2d(6, 6);
        let e = EllMatrix::from_csr(&a);
        let r: Vec<f64> = (0..36).map(|i| (i as f64) * 0.3).collect();
        let mut xc = vec![0.1; 36];
        let mut xe = vec![0.1; 36];
        gs_forward(&a, &r, &mut xc);
        gs_forward(&e, &r, &mut xe);
        for (c, el) in xc.iter().zip(xe.iter()) {
            assert!((c - el).abs() < 1e-14);
        }
    }

    #[test]
    fn ghost_values_stay_frozen() {
        // One row referencing a ghost column: the sweep must read but
        // never write the ghost slot.
        let mut b = CsrBuilder::new(1, 2, 2);
        b.push_row([(0u32, 2.0), (1, -1.0)]);
        let a = b.finish();
        let r = vec![3.0];
        let mut x = vec![0.0, 5.0];
        gs_forward(&a, &r, &mut x);
        // x0 = (3 - (-1*5)) / 2 = 4, ghost untouched.
        assert_eq!(x, vec![4.0, 5.0]);
    }

    #[test]
    fn f32_sweep_tracks_f64() {
        let a = laplacian_2d(4, 4);
        let a32: CsrMatrix<f32> = a.convert();
        let r64: Vec<f64> = (0..16).map(|i| i as f64).collect();
        let r32: Vec<f32> = r64.iter().map(|&v| v as f32).collect();
        let mut x64 = vec![0.0f64; 16];
        let mut x32 = vec![0.0f32; 16];
        for _ in 0..3 {
            gs_forward(&a, &r64, &mut x64);
            gs_forward(&a32, &r32, &mut x32);
        }
        for (h, l) in x64.iter().zip(x32.iter()) {
            assert!((h - *l as f64).abs() < 1e-4);
        }
    }

    #[test]
    fn sptrsv_solves_lower_system() {
        let a = laplacian_2d(4, 4);
        let (l, _) = split_lower_upper(&a);
        let schedule = LevelSchedule::build(&a);
        let x_exact: Vec<f64> = (0..16).map(|i| 1.0 + i as f64).collect();
        let mut rhs = vec![0.0; 16];
        l.spmv(&x_exact, &mut rhs);
        let mut x = vec![0.0; 16];
        sptrsv_lower_level_scheduled(&l, &schedule, &rhs, &mut x);
        for (xi, ei) in x.iter().zip(x_exact.iter()) {
            assert!((xi - ei).abs() < 1e-12);
        }
    }
}
