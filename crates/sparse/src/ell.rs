//! ELLPACK (ELL) sparse storage — the paper's optimized format (§3.2.2).
//!
//! ELL pads every row to the same width and stores values and column
//! indices column-major (all first entries of every row contiguously,
//! then all second entries, …). On GPUs this lets a warp of consecutive
//! threads read consecutive memory for consecutive rows; we keep the
//! exact layout so the byte-traffic accounting, padding overhead, and
//! access pattern studied by the paper are faithfully reproduced.
//!
//! Padding convention: a padded slot stores column `= row index` with
//! value `0`, so kernels need no branch on a sentinel (the extra
//! multiply-add contributes exactly zero).

use crate::csr::CsrMatrix;
use crate::scalar::Scalar;
use crate::simd;
use rayon::prelude::*;

/// Row-block length of the blocked CPU traversal: 256 rows keep one
/// block of every stream (values, indices, accumulators) within L1
/// while amortizing the per-slab loop overhead.
pub const ROW_BLOCK: usize = 256;

/// Lookahead distance (in rows) of the software prefetch issued for
/// the gathered `x` entries in the row-blocked traversal (ROADMAP "ELL
/// SpMV tuning, part 2"). The column indices of a slab segment are
/// read sequentially, so the gather targets are known this many
/// iterations early; the default of 16 rows ≈ two cache lines of
/// indices of latency cover without flooding the prefetch queue.
///
/// Tunable per host via `HPGMXP_PREFETCH` (0 disables the prefetch
/// entirely; `scripts/sweep_prefetch.sh` sweeps the distance on this
/// box). Read once and cached — the distance is a pure hint and never
/// changes results, so a mid-process change would only confuse a
/// sweep.
pub fn prefetch_ahead() -> usize {
    static CACHED: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *CACHED.get_or_init(|| match std::env::var("HPGMXP_PREFETCH") {
        Ok(v) if v.is_empty() => 16,
        Ok(v) => {
            v.trim().parse().unwrap_or_else(|_| panic!("HPGMXP_PREFETCH={v:?} is not a row count"))
        }
        Err(_) => 16,
    })
}

/// Hint the CPU to pull `slice[idx]` toward L1. No-op (after the
/// bounds check) on architectures without a stable prefetch intrinsic;
/// never changes results — it only warms the cache for the upcoming
/// gather.
#[inline(always)]
fn prefetch_read<T>(slice: &[T], idx: usize) {
    if idx >= slice.len() {
        return;
    }
    #[cfg(target_arch = "x86_64")]
    // SAFETY: `idx` is in bounds, so the address is valid to prefetch.
    unsafe {
        use std::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
        _mm_prefetch::<{ _MM_HINT_T0 }>(slice.as_ptr().add(idx) as *const i8);
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = (slice, idx);
}

/// An ELLPACK matrix with scalar type `S`.
#[derive(Debug, Clone, PartialEq)]
pub struct EllMatrix<S> {
    nrows: usize,
    ncols: usize,
    width: usize,
    /// Column-major `width × nrows` indices: entry `k` of row `i` is at
    /// `k * nrows + i`.
    col_idx: Vec<u32>,
    /// Column-major values, same layout as `col_idx`.
    values: Vec<S>,
    /// Diagonal values, extracted for the Gauss-Seidel kernels.
    diag: Vec<S>,
    /// True (unpadded) nonzero count, for FLOP accounting.
    nnz: usize,
}

impl<S: Scalar> EllMatrix<S> {
    /// Convert from CSR, padding to the maximum row width.
    pub fn from_csr(a: &CsrMatrix<S>) -> Self {
        let nrows = a.nrows();
        let width = a.max_row_nnz();
        let mut col_idx = vec![0u32; width * nrows];
        let mut values = vec![S::ZERO; width * nrows];
        let mut diag = vec![S::ZERO; nrows];
        for (i, di) in diag.iter_mut().enumerate() {
            let (cols, vals) = a.row(i);
            for k in 0..width {
                let slot = k * nrows + i;
                if k < cols.len() {
                    col_idx[slot] = cols[k];
                    values[slot] = vals[k];
                    if cols[k] as usize == i {
                        *di = vals[k];
                    }
                } else {
                    col_idx[slot] = i as u32;
                    values[slot] = S::ZERO;
                }
            }
        }
        EllMatrix { nrows, ncols: a.ncols(), width, col_idx, values, diag, nnz: a.nnz() }
    }

    /// Number of owned rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of referenceable columns (owned + ghost).
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Padded row width.
    pub fn width(&self) -> usize {
        self.width
    }

    /// True nonzero count (excludes padding).
    pub fn nnz(&self) -> usize {
        self.nnz
    }

    /// Stored entry count including padding (`width * nrows`).
    pub fn stored_entries(&self) -> usize {
        self.width * self.nrows
    }

    /// The extracted diagonal.
    pub fn diagonal(&self) -> &[S] {
        &self.diag
    }

    /// Entry `k` of row `i` as `(col, value)`.
    #[inline]
    pub fn entry(&self, i: usize, k: usize) -> (u32, S) {
        let slot = k * self.nrows + i;
        (self.col_idx[slot], self.values[slot])
    }

    /// `y = A x`, sequential.
    ///
    /// All SpMV variants on this type are **split-precision**: the
    /// matrix values are loaded in the stored scalar `S` and widened on
    /// the fly, while every multiply-add runs in the caller's
    /// accumulate precision `Acc` (the vectors' type). With `Acc == S`
    /// this is the classic same-precision kernel, bit for bit; with
    /// e.g. `S = f32, Acc = f64` the dominant matrix-value traffic
    /// halves while accumulation keeps double-precision rounding — the
    /// §5 future-work decoupling of storage from compute.
    pub fn spmv<Acc: Scalar>(&self, x: &[Acc], y: &mut [Acc]) {
        assert!(x.len() >= self.ncols);
        assert!(y.len() >= self.nrows);
        let n = self.nrows;
        for yi in y[..n].iter_mut() {
            *yi = Acc::ZERO;
        }
        // Column-major traversal: stream each "slab" of the ELL arrays.
        let yb = &mut y[..n];
        for k in 0..self.width {
            let cs = &self.col_idx[k * n..(k + 1) * n];
            let vs = &self.values[k * n..(k + 1) * n];
            if simd::try_ell_slab_fma(vs, cs, x, yb) {
                continue;
            }
            for i in 0..n {
                yb[i] = Acc::from_scalar(vs[i]).mul_add(x[cs[i] as usize], yb[i]);
            }
        }
    }

    /// `y = A x`, parallel. Chooses between the per-row slab walk and
    /// the row-blocked traversal (see [`EllMatrix::spmv_rowblock`]) by
    /// a locality heuristic; both accumulate each row in ascending
    /// slab order, so the choice never changes a single result bit.
    pub fn spmv_par<Acc: Scalar>(&self, x: &[Acc], y: &mut [Acc]) {
        if self.prefer_rowblock() {
            self.spmv_par_rowblock(x, y);
        } else {
            self.spmv_par_rowwise(x, y);
        }
    }

    /// Heuristic behind [`EllMatrix::spmv_par`]: the per-row walk
    /// touches `width` cache lines `nrows × S::BYTES` apart per row —
    /// hostile once the slab stride leaves L2 — while blocking keeps
    /// `ROW_BLOCK`-long slab segments resident across the `k` loop.
    /// Narrow or tiny matrices (few slabs, or fewer rows than two
    /// blocks) don't recoup the extra accumulator traffic.
    fn prefer_rowblock(&self) -> bool {
        self.width >= 8 && self.nrows >= 2 * ROW_BLOCK
    }

    /// `y = A x`, parallel over rows; each task walks its row across
    /// slabs (stride `nrows` between consecutive entries — the
    /// transposition of the GPU access pattern).
    pub fn spmv_par_rowwise<Acc: Scalar>(&self, x: &[Acc], y: &mut [Acc]) {
        assert!(x.len() >= self.ncols);
        assert!(y.len() >= self.nrows);
        let n = self.nrows;
        let w = self.width;
        let ci = &self.col_idx;
        let vs = &self.values;
        y[..n].par_iter_mut().enumerate().for_each(|(i, yi)| {
            let mut acc = Acc::ZERO;
            for k in 0..w {
                let slot = k * n + i;
                acc = Acc::from_scalar(vs[slot]).mul_add(x[ci[slot] as usize], acc);
            }
            *yi = acc;
        });
    }

    /// `y = A x`, parallel over [`ROW_BLOCK`]-row blocks, each block
    /// walking the slabs with the cache-friendly blocked traversal.
    pub fn spmv_par_rowblock<Acc: Scalar>(&self, x: &[Acc], y: &mut [Acc]) {
        assert!(x.len() >= self.ncols);
        assert!(y.len() >= self.nrows);
        let n = self.nrows;
        y[..n].par_chunks_mut(ROW_BLOCK).enumerate().for_each(|(bi, yb)| {
            self.spmv_block(bi * ROW_BLOCK, x, yb);
        });
    }

    /// `y = A x`, sequential row-blocked traversal: rows are processed
    /// in blocks of [`ROW_BLOCK`]; within a block the slabs are walked
    /// in order, so every memory stream (values, indices, outputs) is a
    /// short contiguous run instead of a full-column slab. This is the
    /// CPU-friendly counterpart of the column-major walk the GPU wants
    /// (ROADMAP "ELL SpMV tuning").
    pub fn spmv_rowblock<Acc: Scalar>(&self, x: &[Acc], y: &mut [Acc]) {
        assert!(x.len() >= self.ncols);
        assert!(y.len() >= self.nrows);
        let n = self.nrows;
        for (bi, yb) in y[..n].chunks_mut(ROW_BLOCK).enumerate() {
            self.spmv_block(bi * ROW_BLOCK, x, yb);
        }
    }

    /// Compute rows `[row0, row0 + yb.len())` into `yb`, slab by slab.
    /// Accumulation order per row is ascending `k`, identical to every
    /// other SpMV variant in this type. While a slab segment streams,
    /// the gather targets [`prefetch_ahead`] rows ahead are prefetched
    /// — the indices are read sequentially, so the upcoming `x`
    /// addresses are known long before they are needed.
    #[inline]
    fn spmv_block<Acc: Scalar>(&self, row0: usize, x: &[Acc], yb: &mut [Acc]) {
        let n = self.nrows;
        let len = yb.len();
        let pf = prefetch_ahead();
        for yi in yb.iter_mut() {
            *yi = Acc::ZERO;
        }
        for k in 0..self.width {
            let base = k * n + row0;
            let cs = &self.col_idx[base..base + len];
            let vs = &self.values[base..base + len];
            if simd::try_ell_slab_fma(vs, cs, x, yb) {
                continue;
            }
            for i in 0..len {
                if pf > 0 && i + pf < len {
                    prefetch_read(x, cs[i + pf] as usize);
                }
                yb[i] = Acc::from_scalar(vs[i]).mul_add(x[cs[i] as usize], yb[i]);
            }
        }
    }

    /// `y[i] = (A x)[i]` for a subset of rows (overlap split, §3.2.3).
    pub fn spmv_rows<Acc: Scalar>(&self, rows: &[u32], x: &[Acc], y: &mut [Acc]) {
        assert!(x.len() >= self.ncols);
        // SAFETY: the builder guarantees every stored column `< ncols
        // <= x.len()`; row indices and lengths are validated inside
        // (out-of-range rows fall through to the panicking loop below).
        let done = unsafe {
            simd::try_ell_rows_spmv(
                &self.values,
                &self.col_idx,
                self.nrows,
                self.width,
                rows,
                x,
                y.as_mut_ptr(),
                y.len(),
            )
        };
        if done {
            return;
        }
        self.spmv_rows_scalar(rows, x, y);
    }

    /// Reference per-row walk behind [`EllMatrix::spmv_rows`].
    fn spmv_rows_scalar<Acc: Scalar>(&self, rows: &[u32], x: &[Acc], y: &mut [Acc]) {
        let n = self.nrows;
        for &i in rows {
            let i = i as usize;
            let mut acc = Acc::ZERO;
            for k in 0..self.width {
                let slot = k * n + i;
                acc = Acc::from_scalar(self.values[slot])
                    .mul_add(x[self.col_idx[slot] as usize], acc);
            }
            y[i] = acc;
        }
    }

    /// Parallel [`EllMatrix::spmv_rows`]. `rows` must not contain
    /// duplicates. Rows are tiled in [`ROW_BLOCK`] groups so the
    /// vector path gets whole tiles of lanes; per-row accumulation
    /// order is unchanged, so results match the sequential walk
    /// bit-for-bit.
    pub fn spmv_rows_par<Acc: Scalar>(&self, rows: &[u32], x: &[Acc], y: &mut [Acc]) {
        assert!(x.len() >= self.ncols);
        assert!(y.len() >= self.nrows);
        let n = self.nrows;
        let y_len = y.len();
        let shared = crate::shared::SharedMut::new(y);
        let sh = &shared;
        rows.par_chunks(ROW_BLOCK).for_each(move |tile| {
            // SAFETY: builder-bounded columns (see `spmv_rows`); tiles
            // of pairwise-distinct rows write disjoint `y` entries and
            // the kernel reads only `x`; row bounds validated inside.
            let done = !tile.is_empty()
                && y_len > 0
                && unsafe {
                    simd::try_ell_rows_spmv(
                        &self.values,
                        &self.col_idx,
                        n,
                        self.width,
                        tile,
                        x,
                        sh.get_mut(0),
                        y_len,
                    )
                };
            if done {
                return;
            }
            for &i in tile {
                let i = i as usize;
                assert!(i < n, "row {} out of range {}", i, n);
                let mut acc = Acc::ZERO;
                for k in 0..self.width {
                    let slot = k * n + i;
                    acc = Acc::from_scalar(self.values[slot])
                        .mul_add(x[self.col_idx[slot] as usize], acc);
                }
                // SAFETY: `rows` lists pairwise-distinct row indices and
                // the kernel reads only `x`; each task writes its own
                // `y[i]`.
                unsafe { *sh.get_mut(i) = acc };
            }
        });
    }

    /// Convert stored values to another precision (batched through the
    /// SIMD converters; same per-element rounding as `from_f64`).
    pub fn convert<T: Scalar>(&self) -> EllMatrix<T> {
        let mut values = vec![T::ZERO; self.values.len()];
        crate::scalar::convert_slice(&self.values, &mut values);
        let mut diag = vec![T::ZERO; self.diag.len()];
        crate::scalar::convert_slice(&self.diag, &mut diag);
        EllMatrix {
            nrows: self.nrows,
            ncols: self.ncols,
            width: self.width,
            col_idx: self.col_idx.clone(),
            values,
            diag,
            nnz: self.nnz,
        }
    }

    /// Column-major stored values (crate-internal: the Gauss-Seidel
    /// vector kernels address slabs directly).
    pub(crate) fn values_slab(&self) -> &[S] {
        &self.values
    }

    /// Column-major stored column indices (crate-internal).
    pub(crate) fn col_idx_slab(&self) -> &[u32] {
        &self.col_idx
    }

    /// Bytes of matrix data read by one SpMV sweep in this format:
    /// padded values + padded column indices, no row pointer (the
    /// trade-off §3.2.2 describes).
    pub fn spmv_matrix_bytes(&self) -> usize {
        self.value_bytes() + self.index_bytes()
    }

    /// Bytes of matrix *values* read by one pass over the stored
    /// entries — the storage-precision-dependent half of the traffic
    /// (what a precision policy shrinks).
    pub fn value_bytes(&self) -> usize {
        self.stored_entries() * S::BYTES
    }

    /// Bytes of column-index data read by one pass (4-byte ids;
    /// independent of the value precision — the paper's explanation
    /// for sub-2x SpMV speedups).
    pub fn index_bytes(&self) -> usize {
        self.stored_entries() * 4
    }

    /// Padding overhead ratio `stored / nnz` (1.0 means no padding).
    pub fn padding_ratio(&self) -> f64 {
        self.stored_entries() as f64 / self.nnz as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::CsrBuilder;

    fn example_csr() -> CsrMatrix<f64> {
        // 4x4 with uneven row lengths and one ghost column (4).
        let mut b = CsrBuilder::new(4, 5, 12);
        b.push_row([(0u32, 4.0), (1, -1.0)]);
        b.push_row([(0u32, -1.0), (1, 4.0), (2, -1.0), (4, -0.5)]);
        b.push_row([(1u32, -1.0), (2, 4.0)]);
        b.push_row([(3u32, 4.0)]);
        b.finish()
    }

    #[test]
    fn layout_is_column_major_with_padding() {
        let a = EllMatrix::from_csr(&example_csr());
        assert_eq!(a.width(), 4);
        assert_eq!(a.nnz(), 9);
        assert_eq!(a.stored_entries(), 16);
        // Row 3 has one entry then padding pointing at itself with 0.
        assert_eq!(a.entry(3, 0), (3, 4.0));
        assert_eq!(a.entry(3, 1), (3, 0.0));
        // Row 1 keeps its CSR order across slabs.
        assert_eq!(a.entry(1, 0), (0, -1.0));
        assert_eq!(a.entry(1, 3), (4, -0.5));
    }

    #[test]
    fn spmv_matches_csr() {
        let csr = example_csr();
        let ell = EllMatrix::from_csr(&csr);
        let x = vec![1.0, 2.0, 3.0, 4.0, 10.0];
        let mut y_csr = vec![0.0; 4];
        let mut y_ell = vec![0.0; 4];
        csr.spmv(&x, &mut y_csr);
        ell.spmv(&x, &mut y_ell);
        assert_eq!(y_csr, y_ell);
        let mut y_par = vec![0.0; 4];
        ell.spmv_par(&x, &mut y_par);
        assert_eq!(y_csr, y_par);
    }

    #[test]
    fn spmv_rows_subset_matches() {
        let csr = example_csr();
        let ell = EllMatrix::from_csr(&csr);
        let x = vec![1.0, -1.0, 0.5, 2.0, 3.0];
        let mut full = vec![0.0; 4];
        ell.spmv(&x, &mut full);
        let mut part = vec![f64::NAN; 4];
        ell.spmv_rows(&[1, 3], &x, &mut part);
        assert_eq!(part[1], full[1]);
        assert_eq!(part[3], full[3]);
        assert!(part[0].is_nan());
    }

    /// A matrix large and wide enough to trip the row-block heuristic:
    /// a 1D 17-point band on `n` rows.
    fn wide_band(n: usize) -> CsrMatrix<f64> {
        let mut b = CsrBuilder::new(n, n, 17 * n);
        for i in 0..n as i64 {
            let mut e = Vec::new();
            for d in -8..=8i64 {
                let j = i + d;
                if j >= 0 && (j as usize) < n {
                    let v = if d == 0 { 20.0 } else { -1.0 / (d.abs() as f64) };
                    e.push((j as u32, v));
                }
            }
            b.push_row(e);
        }
        b.finish()
    }

    #[test]
    fn rowblock_variants_are_bit_identical_to_rowwise() {
        let a = wide_band(3 * ROW_BLOCK + 41);
        let ell = EllMatrix::from_csr(&a);
        assert!(ell.width() >= 8);
        let n = a.nrows();
        let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin()).collect();
        let mut y_seq = vec![0.0; n];
        let mut y_blk = vec![0.0; n];
        let mut y_row = vec![0.0; n];
        let mut y_par = vec![0.0; n];
        ell.spmv(&x, &mut y_seq);
        ell.spmv_rowblock(&x, &mut y_blk);
        ell.spmv_par_rowwise(&x, &mut y_row);
        ell.spmv_par(&x, &mut y_par);
        assert_eq!(y_seq, y_blk);
        assert_eq!(y_seq, y_row);
        assert_eq!(y_seq, y_par);
    }

    #[test]
    fn spmv_rows_par_matches_serial_subset() {
        let a = wide_band(600);
        let ell = EllMatrix::from_csr(&a);
        let x: Vec<f64> = (0..600).map(|i| (i % 7) as f64 - 3.0).collect();
        let mut full = vec![0.0; 600];
        ell.spmv(&x, &mut full);
        let rows: Vec<u32> = (0..600).step_by(3).map(|i| i as u32).collect();
        let mut part = vec![f64::NAN; 600];
        ell.spmv_rows_par(&rows, &x, &mut part);
        for &i in &rows {
            assert_eq!(part[i as usize], full[i as usize]);
        }
    }

    #[test]
    fn diagonal_extraction() {
        let ell = EllMatrix::from_csr(&example_csr());
        assert_eq!(ell.diagonal(), &[4.0, 4.0, 4.0, 4.0]);
    }

    #[test]
    fn conversion_to_f32() {
        let ell = EllMatrix::from_csr(&example_csr());
        let e32: EllMatrix<f32> = ell.convert();
        assert_eq!(e32.nnz(), ell.nnz());
        let x = vec![1.0f32; 5];
        let mut y = vec![0.0f32; 4];
        e32.spmv(&x, &mut y);
        let mut y64 = vec![0.0f64; 4];
        ell.spmv(&[1.0f64; 5], &mut y64);
        for i in 0..4 {
            assert!((y[i] as f64 - y64[i]).abs() < 1e-6);
        }
    }

    #[test]
    fn split_precision_spmv_tracks_f64_within_f32_rounding() {
        // fp32-stored values, f64 accumulation: the error is bounded by
        // the value rounding alone (the accumulator adds ~eps_f64).
        let a = wide_band(700);
        let ell64 = EllMatrix::from_csr(&a);
        let ell32: EllMatrix<f32> = ell64.convert();
        let n = a.nrows();
        let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.61).cos()).collect();
        let mut y64 = vec![0.0f64; n];
        let mut y_split = vec![0.0f64; n];
        ell64.spmv(&x, &mut y64);
        ell32.spmv(&x, &mut y_split); // f32 values, f64 vectors
        for (i, (a, b)) in y64.iter().zip(y_split.iter()).enumerate() {
            let row_scale: f64 = (0..ell64.width())
                .map(|k| {
                    let (c, v) = ell64.entry(i, k);
                    (v.to_f64() * x[c as usize]).abs()
                })
                .sum();
            let bound = 2.0 * f32::EPSILON as f64 * row_scale + 1e-300;
            assert!((a - b).abs() <= bound, "row {i}: {a} vs {b}, bound {bound}");
        }
        // All traversals agree bit-for-bit at the split precision too.
        let mut y_blk = vec![0.0f64; n];
        let mut y_par = vec![0.0f64; n];
        ell32.spmv_rowblock(&x, &mut y_blk);
        ell32.spmv_par(&x, &mut y_par);
        assert_eq!(y_split, y_blk);
        assert_eq!(y_split, y_par);
    }

    #[test]
    fn value_and_index_bytes_split() {
        let ell = EllMatrix::from_csr(&example_csr());
        assert_eq!(ell.value_bytes(), 16 * 8);
        assert_eq!(ell.index_bytes(), 16 * 4);
        let e32: EllMatrix<f32> = ell.convert();
        assert_eq!(e32.value_bytes(), 16 * 4);
        let e16: EllMatrix<crate::Half> = ell.convert();
        assert_eq!(e16.value_bytes(), 16 * 2);
    }

    #[test]
    fn bytes_and_padding() {
        let ell = EllMatrix::from_csr(&example_csr());
        assert_eq!(ell.spmv_matrix_bytes(), 16 * 12);
        assert!((ell.padding_ratio() - 16.0 / 9.0).abs() < 1e-12);
        let e32: EllMatrix<f32> = ell.convert();
        assert_eq!(e32.spmv_matrix_bytes(), 16 * 8);
    }
}
