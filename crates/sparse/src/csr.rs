//! Compressed sparse row (CSR) storage.
//!
//! CSR is the format used by the HPG-MxP *reference* implementation.
//! Local matrices in a distributed run are rectangular: `nrows` owned
//! rows by `ncols = nrows + n_ghost` columns, where columns
//! `>= nrows` refer to halo (ghost) entries received from neighbor
//! ranks. Column indices are 32-bit, matching the index-array traffic
//! the paper's roofline model accounts for.

use crate::scalar::Scalar;
use core::any::TypeId;
use rayon::prelude::*;

/// Row dot `Σ_k widen(vals[k]) * x[cols[k]]` in ascending entry order.
///
/// Split storage (`S != Acc`) widens the row's value run in
/// chunk-sized batches through the SIMD converters (exact — the same
/// per-element widening as `from_scalar`), then runs the identical
/// fused chain, so results match the per-element loop bit-for-bit.
#[inline]
fn row_dot_acc<S: Scalar, Acc: Scalar>(cols: &[u32], vals: &[S], x: &[Acc]) -> Acc {
    let mut acc = Acc::ZERO;
    if TypeId::of::<S>() != TypeId::of::<Acc>() {
        const CHUNK: usize = 64;
        let mut w = [Acc::ZERO; CHUNK];
        let mut at = 0usize;
        while at < vals.len() {
            let len = CHUNK.min(vals.len() - at);
            crate::scalar::convert_slice(&vals[at..at + len], &mut w[..len]);
            for (wk, c) in w[..len].iter().zip(&cols[at..at + len]) {
                acc = wk.mul_add(x[*c as usize], acc);
            }
            at += len;
        }
        return acc;
    }
    for (c, v) in cols.iter().zip(vals.iter()) {
        acc = Acc::from_scalar(*v).mul_add(x[*c as usize], acc);
    }
    acc
}

/// A CSR sparse matrix with scalar type `S`.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix<S> {
    nrows: usize,
    ncols: usize,
    row_ptr: Vec<u32>,
    col_idx: Vec<u32>,
    values: Vec<S>,
    /// Position (into `col_idx`/`values`) of each row's diagonal entry.
    diag_pos: Vec<u32>,
}

/// Incremental row-by-row CSR builder.
///
/// Rows must be pushed in order; each row must contain its diagonal
/// (every benchmark row does — the operator is weakly diagonally
/// dominant with diagonal 26).
pub struct CsrBuilder<S> {
    nrows: usize,
    ncols: usize,
    row_ptr: Vec<u32>,
    col_idx: Vec<u32>,
    values: Vec<S>,
    diag_pos: Vec<u32>,
}

impl<S: Scalar> CsrBuilder<S> {
    /// Start a matrix with `nrows` owned rows and `ncols` referenceable
    /// columns (owned + ghost), reserving for about `nnz_hint` entries.
    pub fn new(nrows: usize, ncols: usize, nnz_hint: usize) -> Self {
        assert!(ncols >= nrows, "column space must include all owned rows");
        let mut row_ptr = Vec::with_capacity(nrows + 1);
        row_ptr.push(0);
        CsrBuilder {
            nrows,
            ncols,
            row_ptr,
            col_idx: Vec::with_capacity(nnz_hint),
            values: Vec::with_capacity(nnz_hint),
            diag_pos: Vec::with_capacity(nrows),
        }
    }

    /// Append the next row. `entries` is a sequence of `(col, value)`.
    pub fn push_row(&mut self, entries: impl IntoIterator<Item = (u32, S)>) {
        let row = self.row_ptr.len() - 1;
        assert!(row < self.nrows, "more rows pushed than declared");
        let start = self.col_idx.len();
        let mut diag = u32::MAX;
        for (c, v) in entries {
            assert!((c as usize) < self.ncols, "column {} out of range {}", c, self.ncols);
            if c as usize == row {
                diag = self.col_idx.len() as u32;
            }
            self.col_idx.push(c);
            self.values.push(v);
        }
        assert!(diag != u32::MAX, "row {} has no diagonal entry", row);
        assert!(self.col_idx.len() > start, "empty row {}", row);
        self.diag_pos.push(diag);
        self.row_ptr.push(self.col_idx.len() as u32);
    }

    /// Finish building; panics if fewer rows than declared were pushed.
    pub fn finish(self) -> CsrMatrix<S> {
        assert_eq!(self.row_ptr.len(), self.nrows + 1, "not all rows were pushed");
        CsrMatrix {
            nrows: self.nrows,
            ncols: self.ncols,
            row_ptr: self.row_ptr,
            col_idx: self.col_idx,
            values: self.values,
            diag_pos: self.diag_pos,
        }
    }
}

impl<S: Scalar> CsrMatrix<S> {
    /// Build a (small, square, fully local) matrix from dense row data;
    /// intended for tests and examples.
    pub fn from_dense_rows(rows: &[Vec<f64>]) -> Self {
        let n = rows.len();
        let mut b = CsrBuilder::new(n, n, n * n / 2);
        for (i, r) in rows.iter().enumerate() {
            assert_eq!(r.len(), n);
            b.push_row(r.iter().enumerate().filter_map(|(j, &v)| {
                if v != 0.0 || i == j {
                    Some((j as u32, S::from_f64(v)))
                } else {
                    None
                }
            }));
        }
        b.finish()
    }

    /// Number of owned rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of referenceable columns (owned + ghost).
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored nonzeros.
    pub fn nnz(&self) -> usize {
        self.col_idx.len()
    }

    /// The raw row pointer array.
    pub fn row_ptr(&self) -> &[u32] {
        &self.row_ptr
    }

    /// A row's `(columns, values)` pair.
    #[inline]
    pub fn row(&self, i: usize) -> (&[u32], &[S]) {
        let lo = self.row_ptr[i] as usize;
        let hi = self.row_ptr[i + 1] as usize;
        (&self.col_idx[lo..hi], &self.values[lo..hi])
    }

    /// The diagonal value of row `i`.
    #[inline]
    pub fn diag(&self, i: usize) -> S {
        self.values[self.diag_pos[i] as usize]
    }

    /// Copy of the diagonal as a vector.
    pub fn diagonal(&self) -> Vec<S> {
        (0..self.nrows).map(|i| self.diag(i)).collect()
    }

    /// Mutable access to a value by position (used by tests to inject
    /// perturbations).
    pub fn values_mut(&mut self) -> &mut [S] {
        &mut self.values
    }

    /// The raw column index array.
    pub fn col_idx(&self) -> &[u32] {
        &self.col_idx
    }

    /// `y = A x`, sequential. `x` must cover the full column space
    /// (owned + ghosts); `y` covers owned rows.
    ///
    /// Split-precision: values are loaded in the stored scalar `S` and
    /// widened on the fly; all arithmetic runs in the vectors'
    /// accumulate precision `Acc` (identity when `Acc == S`).
    pub fn spmv<Acc: Scalar>(&self, x: &[Acc], y: &mut [Acc]) {
        assert!(x.len() >= self.ncols, "input vector shorter than column space");
        assert!(y.len() >= self.nrows);
        for (i, yi) in y[..self.nrows].iter_mut().enumerate() {
            let (cols, vals) = self.row(i);
            *yi = row_dot_acc(cols, vals, x);
        }
    }

    /// `y = A x`, parallel over rows (the CPU analog of the GPU kernel).
    pub fn spmv_par<Acc: Scalar>(&self, x: &[Acc], y: &mut [Acc]) {
        assert!(x.len() >= self.ncols);
        assert!(y.len() >= self.nrows);
        let rp = &self.row_ptr;
        let ci = &self.col_idx;
        let vs = &self.values;
        y[..self.nrows].par_iter_mut().enumerate().for_each(|(i, yi)| {
            let lo = rp[i] as usize;
            let hi = rp[i + 1] as usize;
            *yi = row_dot_acc(&ci[lo..hi], &vs[lo..hi], x);
        });
    }

    /// `y[i] = (A x)[i]` for the given subset of rows only — used to
    /// update interior rows while halo communication is in flight and
    /// boundary rows afterwards (§3.2.3).
    pub fn spmv_rows<Acc: Scalar>(&self, rows: &[u32], x: &[Acc], y: &mut [Acc]) {
        assert!(x.len() >= self.ncols);
        for &i in rows {
            let (cols, vals) = self.row(i as usize);
            y[i as usize] = row_dot_acc(cols, vals, x);
        }
    }

    /// Parallel [`CsrMatrix::spmv_rows`]: the interior/boundary halves
    /// of the overlap split are large row sets, so they go through the
    /// pool too. `rows` must not contain duplicates.
    pub fn spmv_rows_par<Acc: Scalar>(&self, rows: &[u32], x: &[Acc], y: &mut [Acc]) {
        assert!(x.len() >= self.ncols);
        assert!(y.len() >= self.nrows);
        let shared = crate::shared::SharedMut::new(y);
        let sh = &shared;
        rows.par_iter().for_each(move |&i| {
            let i = i as usize;
            assert!(i < self.nrows, "row {} out of range {}", i, self.nrows);
            let (cols, vals) = self.row(i);
            let acc = row_dot_acc(cols, vals, x);
            // SAFETY: `rows` lists pairwise-distinct row indices and the
            // kernel reads only `x`; each task writes its own `y[i]`.
            unsafe { *sh.get_mut(i) = acc };
        });
    }

    /// Convert every stored value to another precision. Ghost structure
    /// and sparsity are unchanged; this is how the mixed-precision solver
    /// obtains its low-precision operator copy.
    pub fn convert<T: Scalar>(&self) -> CsrMatrix<T> {
        let mut values = vec![T::ZERO; self.values.len()];
        crate::scalar::convert_slice(&self.values, &mut values);
        CsrMatrix {
            nrows: self.nrows,
            ncols: self.ncols,
            row_ptr: self.row_ptr.clone(),
            col_idx: self.col_idx.clone(),
            values,
            diag_pos: self.diag_pos.clone(),
        }
    }

    /// Symmetric permutation `P A Pᵀ` of the owned block.
    ///
    /// Row `i` of the result is row `perm.old_of_new(i)` of `self`, and
    /// owned column ids are relabelled through the permutation. Ghost
    /// columns (`>= nrows`) keep their identity — ghost numbering is
    /// owned by the halo plan, not the ordering.
    pub fn symmetric_permute(&self, perm: &crate::ordering::Permutation) -> CsrMatrix<S> {
        assert_eq!(perm.len(), self.nrows);
        let mut b = CsrBuilder::new(self.nrows, self.ncols, self.nnz());
        let mut scratch: Vec<(u32, S)> = Vec::with_capacity(32);
        for new_i in 0..self.nrows {
            let old_i = perm.old_of_new(new_i);
            let (cols, vals) = self.row(old_i);
            scratch.clear();
            for (c, v) in cols.iter().zip(vals.iter()) {
                let nc = if (*c as usize) < self.nrows {
                    perm.new_of_old(*c as usize) as u32
                } else {
                    *c
                };
                scratch.push((nc, *v));
            }
            scratch.sort_unstable_by_key(|e| e.0);
            b.push_row(scratch.iter().copied());
        }
        b.finish()
    }

    /// Dense representation of the owned block (tests only; ghost
    /// columns are appended after the owned ones).
    pub fn to_dense(&self) -> Vec<Vec<f64>> {
        let mut out = vec![vec![0.0; self.ncols]; self.nrows];
        for (i, row_out) in out.iter_mut().enumerate() {
            let (cols, vals) = self.row(i);
            for (c, v) in cols.iter().zip(vals.iter()) {
                row_out[*c as usize] += v.to_f64();
            }
        }
        out
    }

    /// Maximum nonzeros in any row (the ELL width this matrix needs).
    pub fn max_row_nnz(&self) -> usize {
        (0..self.nrows).map(|i| (self.row_ptr[i + 1] - self.row_ptr[i]) as usize).max().unwrap_or(0)
    }

    /// Bytes of matrix data read by one SpMV sweep in this format:
    /// values + column indices + row pointers. Vector traffic is
    /// accounted separately by the machine model.
    pub fn spmv_matrix_bytes(&self) -> usize {
        self.value_bytes() + self.index_bytes()
    }

    /// Bytes of matrix *values* read by one pass over the nonzeros —
    /// the storage-precision-dependent half of the traffic.
    pub fn value_bytes(&self) -> usize {
        self.nnz() * S::BYTES
    }

    /// Bytes of index metadata read by one pass (column ids + row
    /// pointers), independent of the value precision.
    pub fn index_bytes(&self) -> usize {
        self.nnz() * 4 + (self.nrows + 1) * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ordering::Permutation;

    fn laplacian_1d(n: usize) -> CsrMatrix<f64> {
        let mut b = CsrBuilder::new(n, n, 3 * n);
        for i in 0..n {
            let mut row = Vec::new();
            if i > 0 {
                row.push(((i - 1) as u32, -1.0));
            }
            row.push((i as u32, 2.0));
            if i + 1 < n {
                row.push(((i + 1) as u32, -1.0));
            }
            b.push_row(row);
        }
        b.finish()
    }

    #[test]
    fn build_and_query() {
        let a = laplacian_1d(5);
        assert_eq!(a.nrows(), 5);
        assert_eq!(a.nnz(), 13);
        assert_eq!(a.diag(0), 2.0);
        assert_eq!(a.max_row_nnz(), 3);
        let (cols, vals) = a.row(2);
        assert_eq!(cols, &[1, 2, 3]);
        assert_eq!(vals, &[-1.0, 2.0, -1.0]);
    }

    #[test]
    fn spmv_matches_dense() {
        let a = laplacian_1d(7);
        let x: Vec<f64> = (0..7).map(|i| (i * i) as f64).collect();
        let mut y = vec![0.0; 7];
        a.spmv(&x, &mut y);
        let dense = a.to_dense();
        for i in 0..7 {
            let expect: f64 = dense[i].iter().zip(x.iter()).map(|(a, b)| a * b).sum();
            assert!((y[i] - expect).abs() < 1e-12);
        }
    }

    #[test]
    fn spmv_par_matches_serial() {
        let a = laplacian_1d(100);
        let x: Vec<f64> = (0..100).map(|i| (i as f64).sin()).collect();
        let mut y1 = vec![0.0; 100];
        let mut y2 = vec![0.0; 100];
        a.spmv(&x, &mut y1);
        a.spmv_par(&x, &mut y2);
        assert_eq!(y1, y2);
    }

    #[test]
    fn spmv_rows_subset() {
        let a = laplacian_1d(10);
        let x = vec![1.0; 10];
        let mut full = vec![0.0; 10];
        a.spmv(&x, &mut full);
        let mut partial = vec![f64::NAN; 10];
        let evens: Vec<u32> = (0..10).step_by(2).map(|i| i as u32).collect();
        a.spmv_rows(&evens, &x, &mut partial);
        for i in 0..10 {
            if i % 2 == 0 {
                assert_eq!(partial[i], full[i]);
            } else {
                assert!(partial[i].is_nan());
            }
        }
        let mut par = vec![f64::NAN; 10];
        a.spmv_rows_par(&evens, &x, &mut par);
        for i in (0..10).step_by(2) {
            assert_eq!(par[i], full[i]);
        }
    }

    #[test]
    fn convert_to_f32_rounds_values() {
        let a = laplacian_1d(4);
        let a32: CsrMatrix<f32> = a.convert();
        assert_eq!(a32.nnz(), a.nnz());
        assert_eq!(a32.diag(1), 2.0f32);
        let x = vec![1.0f32; 4];
        let mut y = vec![0.0f32; 4];
        a32.spmv(&x, &mut y);
        assert_eq!(y, vec![1.0, 0.0, 0.0, 1.0]);
    }

    #[test]
    fn ghost_columns_allowed() {
        // 2 owned rows, 1 ghost column (id 2).
        let mut b = CsrBuilder::new(2, 3, 6);
        b.push_row([(0u32, 2.0), (1, -1.0), (2, -0.5)]);
        b.push_row([(0u32, -1.0), (1, 2.0)]);
        let a = b.finish();
        let x = vec![1.0, 1.0, 4.0]; // ghost value 4.0
        let mut y = vec![0.0; 2];
        a.spmv(&x, &mut y);
        assert_eq!(y, vec![2.0 - 1.0 - 2.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "no diagonal")]
    fn missing_diagonal_is_rejected() {
        let mut b = CsrBuilder::new(2, 2, 4);
        b.push_row([(1u32, 1.0)]);
    }

    #[test]
    fn symmetric_permute_preserves_spmv() {
        // P A Pᵀ (P x) == P (A x).
        let a = laplacian_1d(6);
        let perm = Permutation::from_new_order(&[5, 3, 1, 0, 2, 4]);
        let pa = a.symmetric_permute(&perm);
        let x: Vec<f64> = (0..6).map(|i| i as f64 + 0.5).collect();
        let mut ax = vec![0.0; 6];
        a.spmv(&x, &mut ax);

        let px = perm.apply(&x);
        let mut pax = vec![0.0; 6];
        pa.spmv(&px, &mut pax);
        let expect = perm.apply(&ax);
        for i in 0..6 {
            assert!((pax[i] - expect[i]).abs() < 1e-14);
        }
    }

    #[test]
    fn bytes_accounting() {
        let a = laplacian_1d(5);
        // 13 nnz * (8 + 4) + 6 * 4 row ptr.
        assert_eq!(a.spmv_matrix_bytes(), 13 * 12 + 24);
    }
}
