//! The working-precision abstraction.
//!
//! Every kernel in this workspace is generic over [`Scalar`] so the same
//! code path runs in IEEE double (`f64`, the benchmark's reference
//! precision) and IEEE single (`f32`, the low precision this paper
//! mixes in). The trait also carries the byte width used by the
//! performance model to account memory traffic per precision.

use std::fmt::{Debug, Display};
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A runtime name for one of the three floating-point precisions the
/// solver stack can store, compute, or ship over the wire. This is the
/// value-level mirror of the [`Scalar`] type parameter: the precision
/// policy engine selects kinds at runtime, and an enum-dispatch layer
/// maps each kind back to the monomorphized kernels.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, serde::Serialize, serde::Deserialize,
)]
pub enum PrecKind {
    /// IEEE binary16 (emulated [`crate::Half`]), 2 bytes.
    F16,
    /// IEEE binary32, 4 bytes.
    F32,
    /// IEEE binary64, 8 bytes.
    F64,
}

impl PrecKind {
    /// Storage width in bytes (the memory-wall currency).
    pub fn bytes(self) -> usize {
        match self {
            PrecKind::F16 => 2,
            PrecKind::F32 => 4,
            PrecKind::F64 => 8,
        }
    }

    /// Report name, matching `Scalar::NAME`.
    pub fn name(self) -> &'static str {
        match self {
            PrecKind::F16 => "fp16",
            PrecKind::F32 => "fp32",
            PrecKind::F64 => "fp64",
        }
    }

    /// Parse a report name ("fp64"/"fp32"/"fp16", or "f64"/…).
    pub fn parse(s: &str) -> Option<PrecKind> {
        match s {
            "fp64" | "f64" => Some(PrecKind::F64),
            "fp32" | "f32" => Some(PrecKind::F32),
            "fp16" | "f16" => Some(PrecKind::F16),
            _ => None,
        }
    }
}

impl std::fmt::Display for PrecKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A real floating-point working precision (`f32` or `f64`).
pub trait Scalar:
    Copy
    + Send
    + Sync
    + PartialOrd
    + Debug
    + Display
    + Default
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + SubAssign
    + MulAssign
    + DivAssign
    + Sum
    + 'static
{
    /// Additive identity.
    const ZERO: Self;
    /// Multiplicative identity.
    const ONE: Self;
    /// Storage size in bytes (8 for `f64`, 4 for `f32`); the quantity the
    /// memory-wall argument of the paper is about.
    const BYTES: usize;
    /// Human-readable name used in reports ("fp64" / "fp32").
    const NAME: &'static str;
    /// Unit roundoff (machine epsilon / 2).
    const EPSILON: Self;
    /// The runtime kind of this precision (for policy dispatch).
    const KIND: PrecKind;

    /// Lossless (for `f32`→`f64`) or rounding (for `f64`→`f32`)
    /// conversion from double.
    fn from_f64(v: f64) -> Self;
    /// Widen to double.
    fn to_f64(self) -> f64;
    /// Absolute value.
    fn abs(self) -> Self;
    /// Square root.
    fn sqrt(self) -> Self;
    /// Fused multiply-add `self * a + b`.
    fn mul_add(self, a: Self, b: Self) -> Self;
    /// Max of two values (NaN-propagating is unnecessary here).
    fn max(self, other: Self) -> Self;

    /// Convert from another precision, through double (exact for every
    /// widening pair and identity when `T == Self`; the split-precision
    /// kernels rely on both properties).
    #[inline(always)]
    fn from_scalar<T: Scalar>(v: T) -> Self {
        Self::from_f64(v.to_f64())
    }
}

impl Scalar for f64 {
    const ZERO: Self = 0.0;
    const ONE: Self = 1.0;
    const BYTES: usize = 8;
    const NAME: &'static str = "fp64";
    const EPSILON: Self = f64::EPSILON;
    const KIND: PrecKind = PrecKind::F64;

    #[inline(always)]
    fn from_f64(v: f64) -> Self {
        v
    }
    #[inline(always)]
    fn to_f64(self) -> f64 {
        self
    }
    #[inline(always)]
    fn abs(self) -> Self {
        f64::abs(self)
    }
    #[inline(always)]
    fn sqrt(self) -> Self {
        f64::sqrt(self)
    }
    #[inline(always)]
    fn mul_add(self, a: Self, b: Self) -> Self {
        f64::mul_add(self, a, b)
    }
    #[inline(always)]
    fn max(self, other: Self) -> Self {
        f64::max(self, other)
    }
}

impl Scalar for f32 {
    const ZERO: Self = 0.0;
    const ONE: Self = 1.0;
    const BYTES: usize = 4;
    const NAME: &'static str = "fp32";
    const EPSILON: Self = f32::EPSILON;
    const KIND: PrecKind = PrecKind::F32;

    #[inline(always)]
    fn from_f64(v: f64) -> Self {
        v as f32
    }
    #[inline(always)]
    fn to_f64(self) -> f64 {
        self as f64
    }
    #[inline(always)]
    fn abs(self) -> Self {
        f32::abs(self)
    }
    #[inline(always)]
    fn sqrt(self) -> Self {
        f32::sqrt(self)
    }
    #[inline(always)]
    fn mul_add(self, a: Self, b: Self) -> Self {
        f32::mul_add(self, a, b)
    }
    #[inline(always)]
    fn max(self, other: Self) -> Self {
        f32::max(self, other)
    }
}

/// Convert a slice between precisions (used when handing the f64 outer
/// residual of GMRES-IR to the f32 inner solver and back). Every
/// shipped precision pair takes the batch converters in
/// [`crate::simd`] (same bits — one round-to-nearest-even per
/// narrowing element, exact widening); the loop below is the reference
/// fallback for combinations without a batch kernel.
pub fn convert_slice<Src: Scalar, Dst: Scalar>(src: &[Src], dst: &mut [Dst]) {
    assert_eq!(src.len(), dst.len());
    if crate::simd::convert_slice_fast(src, dst) {
        return;
    }
    for (d, s) in dst.iter_mut().zip(src.iter()) {
        *d = Dst::from_f64(s.to_f64());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants() {
        assert_eq!(<f64 as Scalar>::BYTES, 8);
        assert_eq!(<f32 as Scalar>::BYTES, 4);
        assert_eq!(<f64 as Scalar>::NAME, "fp64");
        assert_eq!(<f32 as Scalar>::NAME, "fp32");
    }

    #[test]
    fn roundtrip_f32() {
        let v = 1.25f64; // exactly representable in f32
        assert_eq!(f32::from_f64(v).to_f64(), v);
    }

    #[test]
    fn rounding_f32() {
        let v = 0.1f64;
        let r = f32::from_f64(v).to_f64();
        assert!((r - v).abs() < 1e-7);
        assert_ne!(r, v);
    }

    #[test]
    fn generic_kernel_is_instantiable_at_both_precisions() {
        fn norm<S: Scalar>(v: &[S]) -> f64 {
            v.iter().map(|x| (*x * *x).to_f64()).sum::<f64>().sqrt()
        }
        assert!((norm(&[3.0f64, 4.0]) - 5.0).abs() < 1e-14);
        assert!((norm(&[3.0f32, 4.0]) - 5.0).abs() < 1e-6);
    }

    #[test]
    fn convert_slice_both_ways() {
        let xs = vec![1.0f64, 2.5, -3.25];
        let mut lo = vec![0.0f32; 3];
        convert_slice(&xs, &mut lo);
        assert_eq!(lo, vec![1.0f32, 2.5, -3.25]);
        let mut hi = vec![0.0f64; 3];
        convert_slice(&lo, &mut hi);
        assert_eq!(hi, xs);
    }
}
