//! Raw shared-mutable slice view for provably disjoint parallel writes.
//!
//! Several motif kernels update a vector at a set of pairwise-distinct
//! indices (rows of one Gauss–Seidel color class, rows of a level in a
//! triangular solve, the interior/boundary row lists of the overlap
//! split, the injection points of restriction). Safe Rust cannot
//! express "these `&mut` borrows are disjoint because the index list
//! has no duplicates", so the kernels share one erased pointer and
//! uphold the invariant themselves.
//!
//! Every use site documents its disjointness argument next to the
//! `unsafe` block.

/// An erased `&mut [S]` that may be shared across the threads of one
/// parallel kernel invocation.
pub struct SharedMut<S> {
    ptr: *mut S,
    len: usize,
}

// SAFETY: the pointee outlives the kernel call (it is borrowed from a
// `&mut [S]` argument), and callers guarantee data-race freedom: each
// task writes only indices no other concurrent task reads or writes.
unsafe impl<S: Send> Send for SharedMut<S> {}
unsafe impl<S: Send> Sync for SharedMut<S> {}

impl<S> SharedMut<S> {
    /// Capture a mutable slice for the duration of one parallel kernel.
    pub fn new(x: &mut [S]) -> Self {
        SharedMut { ptr: x.as_mut_ptr(), len: x.len() }
    }

    /// The whole vector as a shared slice.
    ///
    /// # Safety
    /// The caller must ensure no element read through this slice is
    /// concurrently written through [`SharedMut::get_mut`].
    #[inline(always)]
    pub unsafe fn slice(&self) -> &[S] {
        std::slice::from_raw_parts(self.ptr, self.len)
    }

    /// Length of the captured slice (for callers' bounds assertions).
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the captured slice is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Raw pointer to element `i`.
    ///
    /// # Safety
    /// The caller must ensure `i < len` and that no other thread
    /// concurrently accesses element `i`.
    #[inline(always)]
    pub unsafe fn get_mut(&self, i: usize) -> *mut S {
        debug_assert!(i < self.len);
        self.ptr.add(i)
    }
}
