//! Software-emulated IEEE 754 binary16 ("half precision").
//!
//! The paper's conclusion: *"if one uses half precision strategically
//! for parts of operations in the blue region in algorithm 3, one can
//! expect an even higher speedup. This will be addressed in future
//! work."* This type makes that future work runnable today: [`Half`]
//! implements [`crate::Scalar`], so the entire solver stack — ELL
//! SpMV, multicolor Gauss–Seidel, the multigrid cycle, CGS2, the whole
//! GMRES-IR inner solve — can be instantiated at 16-bit precision and
//! its convergence behaviour studied, while the performance model
//! projects the bandwidth-side gain (2 bytes/value).
//!
//! Storage is a `u16` with IEEE binary16 layout; arithmetic widens to
//! `f32`, computes, and rounds back to nearest-even — the semantics of
//! hardware FP16 units that compute in higher-precision accumulators.

use crate::scalar::{PrecKind, Scalar};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// An IEEE 754 binary16 value.
///
/// `repr(transparent)` over the bit pattern: a `&[Half]` reinterprets
/// soundly as `&[u16]`, which is what lets the SIMD layer feed slices
/// of this type straight to the F16C conversion units (see
/// [`as_bits`] / [`as_bits_mut`]).
#[derive(Copy, Clone, Default, PartialEq, PartialOrd)]
#[repr(transparent)]
pub struct Half(u16);

/// Convert an `f32` to binary16 bits with round-to-nearest-even.
pub fn f32_to_f16_bits(x: f32) -> u16 {
    let bits = x.to_bits();
    let sign = ((bits >> 16) & 0x8000) as u16;
    let exp = ((bits >> 23) & 0xff) as i32;
    let man = bits & 0x007f_ffff;

    if exp == 255 {
        // Inf / NaN (preserve a quiet-NaN payload bit).
        return sign | 0x7c00 | if man != 0 { 0x0200 } else { 0 };
    }
    let unbiased = exp - 127;
    if unbiased >= 16 {
        return sign | 0x7c00; // overflow → ±inf
    }
    if unbiased >= -14 {
        // Normal range: keep 10 mantissa bits, round the lost 13.
        let mut m = man >> 13;
        let rest = man & 0x1fff;
        if rest > 0x1000 || (rest == 0x1000 && (m & 1) == 1) {
            m += 1;
        }
        let mut e = (unbiased + 15) as u32;
        if m == 0x400 {
            m = 0;
            e += 1;
            if e >= 31 {
                return sign | 0x7c00;
            }
        }
        return sign | ((e as u16) << 10) | (m as u16);
    }
    if unbiased >= -25 {
        // Subnormal range: the result is M · 2⁻²⁴ with
        // M = round(full · 2^(unbiased+1)), full the 24-bit significand.
        let total_shift = (-1 - unbiased) as u32; // 14..=24
        let full = man | 0x0080_0000;
        let mut m = full >> total_shift;
        let half_ulp = 1u32 << (total_shift - 1);
        let rest = full & ((1u32 << total_shift) - 1);
        if rest > half_ulp || (rest == half_ulp && (m & 1) == 1) {
            m += 1;
        }
        // A carry into bit 10 lands exactly on the smallest normal.
        return sign | (m as u16);
    }
    sign // underflow → ±0
}

/// Convert binary16 bits to an `f32` (exact).
pub fn f16_bits_to_f32(h: u16) -> f32 {
    let sign = if h & 0x8000 != 0 { -1.0f32 } else { 1.0 };
    let exp = (h >> 10) & 0x1f;
    let man = (h & 0x3ff) as u32;
    match exp {
        0 => sign * (man as f32) * f32::powi(2.0, -24),
        31 => {
            if man == 0 {
                sign * f32::INFINITY
            } else {
                f32::NAN
            }
        }
        _ => {
            let bits =
                (((h as u32) & 0x8000) << 16) | (((exp as u32) + 127 - 15) << 23) | (man << 13);
            f32::from_bits(bits)
        }
    }
}

impl Half {
    /// Largest finite binary16 value (65 504).
    pub const MAX: Half = Half(0x7bff);
    /// Smallest positive normal value (≈6.1e-5).
    pub const MIN_POSITIVE: Half = Half(0x0400);

    /// Round an `f32` into binary16.
    #[inline]
    pub fn from_f32(x: f32) -> Half {
        Half(f32_to_f16_bits(x))
    }

    /// Widen to `f32` exactly.
    #[inline]
    pub fn to_f32(self) -> f32 {
        f16_bits_to_f32(self.0)
    }

    /// Raw bit pattern.
    pub fn to_bits(self) -> u16 {
        self.0
    }

    /// From raw bits.
    pub fn from_bits(bits: u16) -> Half {
        Half(bits)
    }

    /// Whether this value is NaN.
    pub fn is_nan(self) -> bool {
        (self.0 & 0x7c00) == 0x7c00 && (self.0 & 0x3ff) != 0
    }
}

/// View an fp16 slice as its raw bit patterns (sound by
/// `repr(transparent)`).
#[inline]
pub fn as_bits(src: &[Half]) -> &[u16] {
    // SAFETY: Half is repr(transparent) over u16.
    unsafe { std::slice::from_raw_parts(src.as_ptr() as *const u16, src.len()) }
}

/// Mutable bit-pattern view of an fp16 slice.
#[inline]
pub fn as_bits_mut(src: &mut [Half]) -> &mut [u16] {
    // SAFETY: Half is repr(transparent) over u16, and any u16 pattern
    // is a valid Half.
    unsafe { std::slice::from_raw_parts_mut(src.as_mut_ptr() as *mut u16, src.len()) }
}

/// Widen an fp16 slice into `f32` exactly (the load half of a
/// "fp16-stored, f32-accumulated" kernel: values live in 2-byte
/// storage and are expanded on the fly). Batched through the SIMD
/// layer; handles unaligned heads and ragged tails of any length.
pub fn widen_f16_slice(src: &[Half], dst: &mut [f32]) {
    assert_eq!(src.len(), dst.len());
    crate::simd::widen_f16_f32(as_bits(src), dst);
}

/// Round an `f32` slice into fp16 storage (the store half; one
/// round-to-nearest-even per element). Batched through the SIMD layer.
pub fn narrow_f32_slice(src: &[f32], dst: &mut [Half]) {
    assert_eq!(src.len(), dst.len());
    crate::simd::narrow_f32_f16(src, as_bits_mut(dst));
}

/// Slice dot product in fp16 storage with a single f32 accumulation
/// chain: both operands are batch-widened (exact), multiplied and
/// accumulated with one fused `mul_add` per element in index order,
/// and narrowed **once** at the end — instead of the generic kernel's
/// per-element round-trip through fp16, which rounds every partial
/// sum. `blas::dot` routes `S = Half` here.
pub fn dot_f16(x: &[Half], y: &[Half]) -> Half {
    const CHUNK: usize = 256;
    let n = x.len().min(y.len());
    let mut xw = [0.0f32; CHUNK];
    let mut yw = [0.0f32; CHUNK];
    let mut acc = 0.0f32;
    let mut at = 0usize;
    while at < n {
        let len = CHUNK.min(n - at);
        crate::simd::widen_f16_f32(as_bits(&x[at..at + len]), &mut xw[..len]);
        crate::simd::widen_f16_f32(as_bits(&y[at..at + len]), &mut yw[..len]);
        for i in 0..len {
            acc = xw[i].mul_add(yw[i], acc);
        }
        at += len;
    }
    Half::from_f32(acc)
}

/// Slice sum in fp16 storage: batch-widened, sequentially accumulated
/// in f32 (index order, matching the `Sum` impl bit-for-bit), narrowed
/// once.
pub fn sum_f16_slice(x: &[Half]) -> Half {
    const CHUNK: usize = 256;
    let mut w = [0.0f32; CHUNK];
    // std's float `Sum` folds from -0.0 (the additive identity);
    // start there so the bits match the iterator path exactly.
    let mut acc = -0.0f32;
    let mut at = 0usize;
    while at < x.len() {
        let len = CHUNK.min(x.len() - at);
        crate::simd::widen_f16_f32(as_bits(&x[at..at + len]), &mut w[..len]);
        for v in &w[..len] {
            acc += *v;
        }
        at += len;
    }
    Half::from_f32(acc)
}

impl fmt::Debug for Half {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}f16", self.to_f32())
    }
}

impl fmt::Display for Half {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_f32())
    }
}

macro_rules! half_binop {
    ($trait:ident, $method:ident, $op:tt, $assign_trait:ident, $assign_method:ident) => {
        impl $trait for Half {
            type Output = Half;
            #[inline]
            fn $method(self, rhs: Half) -> Half {
                Half::from_f32(self.to_f32() $op rhs.to_f32())
            }
        }
        impl $assign_trait for Half {
            #[inline]
            fn $assign_method(&mut self, rhs: Half) {
                *self = *self $op rhs;
            }
        }
    };
}

half_binop!(Add, add, +, AddAssign, add_assign);
half_binop!(Sub, sub, -, SubAssign, sub_assign);
half_binop!(Mul, mul, *, MulAssign, mul_assign);
half_binop!(Div, div, /, DivAssign, div_assign);

impl Neg for Half {
    type Output = Half;
    #[inline]
    fn neg(self) -> Half {
        Half(self.0 ^ 0x8000)
    }
}

impl Sum for Half {
    fn sum<I: Iterator<Item = Half>>(iter: I) -> Half {
        // Accumulate in f32, as a hardware FP16 dot unit would.
        Half::from_f32(iter.map(|h| h.to_f32()).sum())
    }
}

impl Scalar for Half {
    const ZERO: Self = Half(0);
    const ONE: Self = Half(0x3c00);
    const BYTES: usize = 2;
    const NAME: &'static str = "fp16";
    const EPSILON: Self = Half(0x1400); // 2^-10
    const KIND: PrecKind = PrecKind::F16;

    #[inline]
    fn from_f64(v: f64) -> Self {
        Half::from_f32(v as f32)
    }
    #[inline]
    fn to_f64(self) -> f64 {
        self.to_f32() as f64
    }
    #[inline]
    fn abs(self) -> Self {
        Half(self.0 & 0x7fff)
    }
    #[inline]
    fn sqrt(self) -> Self {
        Half::from_f32(self.to_f32().sqrt())
    }
    #[inline]
    fn mul_add(self, a: Self, b: Self) -> Self {
        // Fused in f32 (one rounding), as tensor-core style FMA units do.
        Half::from_f32(self.to_f32().mul_add(a.to_f32(), b.to_f32()))
    }
    #[inline]
    fn max(self, other: Self) -> Self {
        if self.to_f32() >= other.to_f32() {
            self
        } else {
            other
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_encodings() {
        assert_eq!(Half::from_f32(0.0).to_bits(), 0x0000);
        assert_eq!(Half::from_f32(-0.0).to_bits(), 0x8000);
        assert_eq!(Half::from_f32(1.0).to_bits(), 0x3c00);
        assert_eq!(Half::from_f32(-2.0).to_bits(), 0xc000);
        assert_eq!(Half::from_f32(0.5).to_bits(), 0x3800);
        assert_eq!(Half::from_f32(65504.0).to_bits(), 0x7bff);
        assert_eq!(Half::from_f32(f32::INFINITY).to_bits(), 0x7c00);
        assert!(Half::from_f32(f32::NAN).is_nan());
        // Benchmark matrix values are exact in fp16.
        assert_eq!(Half::from_f32(26.0).to_f32(), 26.0);
        assert_eq!(Half::from_f32(-1.0).to_f32(), -1.0);
    }

    #[test]
    fn all_finite_bit_patterns_roundtrip() {
        // f16 → f32 is exact, so converting back must be the identity
        // for every non-NaN pattern.
        for bits in 0u16..=0xffff {
            let h = Half::from_bits(bits);
            if h.is_nan() {
                continue;
            }
            let back = Half::from_f32(h.to_f32());
            assert_eq!(back.to_bits(), bits, "pattern {:#06x}", bits);
        }
    }

    #[test]
    fn overflow_and_underflow() {
        assert_eq!(Half::from_f32(1e6).to_bits(), 0x7c00); // +inf
        assert_eq!(Half::from_f32(-1e6).to_bits(), 0xfc00);
        assert_eq!(Half::from_f32(1e-10).to_bits(), 0x0000);
        // Largest subnormal ≈ 6.0976e-5.
        let sub = Half::from_bits(0x03ff);
        assert!((sub.to_f32() - 6.0976e-5).abs() < 1e-8);
    }

    #[test]
    fn round_to_nearest_even() {
        // 1 + 2^-11 is exactly halfway between 1.0 and 1+2^-10:
        // nearest-even rounds down to 1.0.
        let x = 1.0f32 + f32::powi(2.0, -11);
        assert_eq!(Half::from_f32(x).to_bits(), 0x3c00);
        // 1 + 3*2^-11 is halfway between 1+2^-10 and 1+2^-9: rounds up
        // to the even 1+2^-9.
        let y = 1.0f32 + 3.0 * f32::powi(2.0, -11);
        assert_eq!(Half::from_f32(y).to_bits(), 0x3c02);
    }

    #[test]
    fn arithmetic_matches_f32_with_rounding() {
        let a = Half::from_f32(1.5);
        let b = Half::from_f32(0.25);
        assert_eq!((a + b).to_f32(), 1.75);
        assert_eq!((a - b).to_f32(), 1.25);
        assert_eq!((a * b).to_f32(), 0.375);
        assert_eq!((a / b).to_f32(), 6.0);
        assert_eq!((-a).to_f32(), -1.5);
        let mut c = a;
        c += b;
        assert_eq!(c.to_f32(), 1.75);
    }

    #[test]
    fn scalar_trait_constants() {
        assert_eq!(<Half as Scalar>::BYTES, 2);
        assert_eq!(<Half as Scalar>::NAME, "fp16");
        assert_eq!(Half::ZERO.to_f32(), 0.0);
        assert_eq!(Half::ONE.to_f32(), 1.0);
        assert_eq!(<Half as Scalar>::EPSILON.to_f32(), f32::powi(2.0, -10));
    }

    #[test]
    fn generic_kernels_run_at_fp16() {
        // The same generic code paths used by the solver.
        let x: Vec<Half> = (0..50).map(|i| Half::from_f64(0.01 * i as f64)).collect();
        let y: Vec<Half> = (0..50).map(|i| Half::from_f64(0.02 * i as f64)).collect();
        let d = crate::blas::dot(&x, &y);
        let exact: f64 = (0..50).map(|i| 0.01 * i as f64 * 0.02 * i as f64).sum();
        assert!((d.to_f64() - exact).abs() < exact * 0.01, "{} vs {}", d, exact);

        let mut w = vec![Half::ZERO; 50];
        crate::blas::waxpby(Half::from_f64(2.0), &x, Half::from_f64(-1.0), &y, &mut w);
        for wi in &w {
            assert!(wi.to_f32().abs() < 1e-3, "2*0.01i - 0.02i = 0");
        }
    }

    #[test]
    fn fp16_spmv_on_benchmark_stencil() {
        use crate::csr::CsrBuilder;
        // A weakly dominant row like the benchmark's: 26 - 4*1 ≠ 0.
        let mut b = CsrBuilder::new(2, 2, 4);
        b.push_row([(0u32, Half::from_f64(26.0)), (1, Half::from_f64(-1.0))]);
        b.push_row([(0u32, Half::from_f64(-1.0)), (1, Half::from_f64(26.0))]);
        let a = b.finish();
        let x = vec![Half::ONE; 2];
        let mut y = vec![Half::ZERO; 2];
        a.spmv(&x, &mut y);
        assert_eq!(y[0].to_f32(), 25.0);
        assert_eq!(y[1].to_f32(), 25.0);
    }

    #[test]
    fn slice_widen_narrow_roundtrip() {
        let h: Vec<Half> = (0..64).map(|i| Half::from_f32(i as f32 * 0.25 - 4.0)).collect();
        let mut wide = vec![0.0f32; 64];
        widen_f16_slice(&h, &mut wide);
        for (w, x) in wide.iter().zip(h.iter()) {
            assert_eq!(*w, x.to_f32(), "widening is exact");
        }
        let mut back = vec![Half::ZERO; 64];
        narrow_f32_slice(&wide, &mut back);
        assert_eq!(
            back.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            h.iter().map(|x| x.to_bits()).collect::<Vec<_>>()
        );
        // Narrowing rounds to nearest-even.
        narrow_f32_slice(&[1.0 + f32::powi(2.0, -11)], &mut back[..1]);
        assert_eq!(back[0].to_bits(), 0x3c00);
    }

    #[test]
    fn slice_helpers_handle_ragged_heads_and_tails() {
        // Every length around the 8-lane vector width and some larger
        // odd sizes, at offset slices, must match the per-element path.
        for len in [0usize, 1, 3, 7, 8, 9, 15, 16, 17, 63, 255, 256, 257] {
            let h: Vec<Half> =
                (0..len + 3).map(|i| Half::from_f32((i as f32 - 7.0) * 0.31)).collect();
            for off in 0..3usize.min(h.len()) {
                let src = &h[off..(off + len).min(h.len())];
                let mut wide = vec![0.0f32; src.len()];
                widen_f16_slice(src, &mut wide);
                for (w, s) in wide.iter().zip(src.iter()) {
                    assert_eq!(w.to_bits(), s.to_f32().to_bits());
                }
                let mut back = vec![Half::ZERO; src.len()];
                narrow_f32_slice(&wide, &mut back);
                for (b, s) in back.iter().zip(src.iter()) {
                    assert_eq!(b.to_bits(), s.to_bits());
                }
            }
        }
    }

    #[test]
    fn sum_slice_matches_iterator_sum_bitwise() {
        for len in [0usize, 1, 7, 8, 9, 255, 256, 257, 1000] {
            let v: Vec<Half> =
                (0..len).map(|i| Half::from_f32((i as f32 * 0.17 - 3.0).sin())).collect();
            let iter_sum: Half = v.iter().copied().sum();
            assert_eq!(sum_f16_slice(&v).to_bits(), iter_sum.to_bits(), "len {len}");
        }
    }

    #[test]
    fn dot_f16_uses_one_accumulation_chain() {
        for len in [0usize, 1, 8, 9, 256, 257, 600] {
            let x: Vec<Half> = (0..len).map(|i| Half::from_f32((i as f32 * 0.23).cos())).collect();
            let y: Vec<Half> = (0..len).map(|i| Half::from_f32((i as f32 * 0.11).sin())).collect();
            let mut acc = 0.0f32;
            for (a, b) in x.iter().zip(y.iter()) {
                acc = a.to_f32().mul_add(b.to_f32(), acc);
            }
            assert_eq!(dot_f16(&x, &y).to_bits(), Half::from_f32(acc).to_bits(), "len {len}");
        }
    }

    #[test]
    fn sum_accumulates_in_f32() {
        // 4096 copies of 1.0 sum exactly (fits fp16 range via f32 acc;
        // naive fp16 accumulation would stall at 2048).
        let v = vec![Half::ONE; 4096];
        let s: Half = v.into_iter().sum();
        assert_eq!(s.to_f32(), 4096.0);
    }
}
