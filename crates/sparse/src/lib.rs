//! Sparse and dense computational motifs of the HPG-MxP benchmark.
//!
//! HPG-MxP measures a machine's throughput on the memory-bandwidth-bound
//! motifs of sparse iterative solvers. This crate implements all of them,
//! in both storage formats discussed by the paper and generically over
//! the working precision:
//!
//! * [`scalar`] — the [`scalar::Scalar`] abstraction over `f32`/`f64`
//!   that lets every kernel be instantiated at either precision (the
//!   benchmark's "low precision" is `f32`; the reference precision is
//!   `f64`),
//! * [`csr`] — compressed sparse row storage (the reference
//!   implementation's format),
//! * [`ell`] — ELLPACK storage with column-major padding (the paper's
//!   optimized format, §3.2.2),
//! * [`coloring`] — greedy and Jones–Plassmann–Luby multicoloring used
//!   to expose parallelism inside Gauss–Seidel (§3.2.1),
//! * [`ordering`] — permutations, color-block ordering, and reverse
//!   Cuthill–McKee (for the ordering-quality comparisons §3.2.1 cites),
//! * [`levels`] — level scheduling of triangular sweeps (the reference
//!   implementation's parallelization strategy),
//! * [`gauss_seidel`] — forward/backward/symmetric and multicolor
//!   Gauss–Seidel sweeps in relaxation form,
//! * [`blas`] — DOT/NRM2/WAXPBY/GEMV kernels, including the fused
//!   mixed-precision variants the optimized benchmark performs on the
//!   device (§3.2.5),
//! * [`simd`] — runtime-dispatched (AVX2/FMA/F16C with a portable
//!   scalar fallback) vector primitives the hot loops above are built
//!   on: batch precision converters, widening gathers/loads, and
//!   tile-wide FMA accumulation.

pub mod blas;
pub mod coloring;
pub mod csr;
pub mod ell;
pub mod gauss_seidel;
pub mod half;
pub mod levels;
pub mod ordering;
pub mod scalar;
pub mod shared;
pub mod simd;

pub use coloring::{greedy_coloring, jpl_coloring, Coloring};
pub use csr::{CsrBuilder, CsrMatrix};
pub use ell::EllMatrix;
pub use half::Half;
pub use levels::LevelSchedule;
pub use ordering::Permutation;
pub use scalar::{PrecKind, Scalar};
