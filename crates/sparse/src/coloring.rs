//! Graph multicoloring for parallel Gauss–Seidel (§3.2.1).
//!
//! A valid coloring partitions the rows into independent sets: no two
//! rows of the same color are coupled by a nonzero. A Gauss–Seidel sweep
//! can then process the colors sequentially while updating all rows
//! *within* a color fully in parallel. For the 27-point stencil the
//! natural coloring has 8 colors (the 2×2×2 parity classes), the 3D
//! analog of the 4-color 9-point example in the paper's figure 2.
//!
//! Two algorithms are provided:
//!
//! * [`greedy_coloring`] — the sequential greedy algorithm (Saad §3.3.3),
//!   deterministic, used as the quality yardstick;
//! * [`jpl_coloring`] — Jones–Plassmann–Luby with deterministic seeded
//!   random weights, the algorithm the paper runs on the GPU during the
//!   benchmark's optimization phase. Each round colors the set of
//!   uncolored vertices whose weight is a local maximum among their
//!   uncolored neighbors; rounds are embarrassingly parallel.

use crate::csr::CsrMatrix;
use crate::scalar::Scalar;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use rayon::prelude::*;

/// The result of coloring a local matrix graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Coloring {
    /// Color of each row, `0..num_colors`.
    pub color_of: Vec<u32>,
    /// Number of colors used.
    pub num_colors: u32,
    /// Rows grouped by color: `rows_of[c]` lists the rows of color `c`
    /// in increasing row order.
    pub rows_of: Vec<Vec<u32>>,
}

impl Coloring {
    fn from_color_of(color_of: Vec<u32>) -> Self {
        let num_colors = color_of.iter().copied().max().map_or(0, |m| m + 1);
        let mut rows_of = vec![Vec::new(); num_colors as usize];
        for (i, &c) in color_of.iter().enumerate() {
            rows_of[c as usize].push(i as u32);
        }
        Coloring { color_of, num_colors, rows_of }
    }

    /// Verify the independent-set property against a matrix: no stored
    /// off-diagonal owned-block entry may connect two same-colored rows.
    pub fn verify<S: Scalar>(&self, a: &CsrMatrix<S>) -> bool {
        let n = a.nrows();
        for i in 0..n {
            let (cols, _) = a.row(i);
            for &c in cols {
                let j = c as usize;
                if j < n && j != i && self.color_of[i] == self.color_of[j] {
                    return false;
                }
            }
        }
        true
    }

    /// Size of the largest color class (bounds achievable parallelism).
    pub fn max_class_size(&self) -> usize {
        self.rows_of.iter().map(|r| r.len()).max().unwrap_or(0)
    }
}

/// Iterate the owned-block neighbors of row `i` (off-diagonal, local).
#[inline]
fn local_neighbors<'a, S: Scalar>(
    a: &'a CsrMatrix<S>,
    i: usize,
) -> impl Iterator<Item = usize> + 'a {
    let n = a.nrows();
    let (cols, _) = a.row(i);
    cols.iter().map(|&c| c as usize).filter(move |&j| j < n && j != i)
}

/// Sequential greedy coloring: rows in natural order take the smallest
/// color unused by their already-colored neighbors.
pub fn greedy_coloring<S: Scalar>(a: &CsrMatrix<S>) -> Coloring {
    let n = a.nrows();
    let mut color_of = vec![u32::MAX; n];
    let mut used: Vec<bool> = Vec::new();
    for i in 0..n {
        used.clear();
        for j in local_neighbors(a, i) {
            let cj = color_of[j];
            if cj != u32::MAX {
                if used.len() <= cj as usize {
                    used.resize(cj as usize + 1, false);
                }
                used[cj as usize] = true;
            }
        }
        let c = used.iter().position(|&u| !u).unwrap_or(used.len());
        color_of[i] = c as u32;
    }
    Coloring::from_color_of(color_of)
}

/// Jones–Plassmann–Luby coloring with deterministic seeded weights.
///
/// In each round, every still-uncolored vertex whose random weight beats
/// all of its uncolored neighbors' weights (ties broken by index) is
/// colored with the smallest color absent among its *colored* neighbors.
/// Candidate selection within a round is data-parallel, mirroring the
/// GPU implementation of Naumov et al. that the paper uses.
pub fn jpl_coloring<S: Scalar>(a: &CsrMatrix<S>, seed: u64) -> Coloring {
    let n = a.nrows();
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let weights: Vec<u64> = (0..n).map(|_| rng.gen()).collect();
    let mut color_of = vec![u32::MAX; n];
    let mut uncolored = n;

    while uncolored > 0 {
        // Select this round's independent set in parallel.
        let winners: Vec<u32> = (0..n)
            .into_par_iter()
            .filter(|&i| {
                if color_of[i] != u32::MAX {
                    return false;
                }
                let wi = (weights[i], i);
                local_neighbors(a, i).all(|j| color_of[j] != u32::MAX || (weights[j], j) < wi)
            })
            .map(|i| i as u32)
            .collect();
        debug_assert!(!winners.is_empty(), "JPL must make progress every round");

        // Winners form an independent set, so coloring them against the
        // already-colored neighborhood is race-free.
        let assigned: Vec<(u32, u32)> = winners
            .par_iter()
            .map(|&iw| {
                let i = iw as usize;
                let mut used = 0u64; // stencil graphs need < 64 colors
                for j in local_neighbors(a, i) {
                    let cj = color_of[j];
                    if cj != u32::MAX && cj < 64 {
                        used |= 1 << cj;
                    }
                }
                let c = (!used).trailing_zeros();
                (iw, c)
            })
            .collect();
        for (i, c) in assigned {
            color_of[i as usize] = c;
            uncolored -= 1;
        }
    }
    Coloring::from_color_of(color_of)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::CsrBuilder;

    /// 2D 5-point Laplacian on an nx × ny grid — bipartite, 2-colorable.
    fn laplacian_2d(nx: usize, ny: usize) -> CsrMatrix<f64> {
        let n = nx * ny;
        let mut b = CsrBuilder::new(n, n, 5 * n);
        for j in 0..ny {
            for i in 0..nx {
                let row = j * nx + i;
                let mut entries = Vec::new();
                if j > 0 {
                    entries.push(((row - nx) as u32, -1.0));
                }
                if i > 0 {
                    entries.push(((row - 1) as u32, -1.0));
                }
                entries.push((row as u32, 4.0));
                if i + 1 < nx {
                    entries.push(((row + 1) as u32, -1.0));
                }
                if j + 1 < ny {
                    entries.push(((row + nx) as u32, -1.0));
                }
                b.push_row(entries);
            }
        }
        b.finish()
    }

    /// Dense 9-point 2D stencil (figure 2 of the paper): needs 4 colors.
    fn stencil9_2d(nx: usize, ny: usize) -> CsrMatrix<f64> {
        let n = nx * ny;
        let mut b = CsrBuilder::new(n, n, 9 * n);
        for j in 0..ny as i64 {
            for i in 0..nx as i64 {
                let row = (j * nx as i64 + i) as u32;
                let mut entries = Vec::new();
                for dj in -1..=1i64 {
                    for di in -1..=1i64 {
                        let (ni, nj) = (i + di, j + dj);
                        if ni >= 0 && nj >= 0 && ni < nx as i64 && nj < ny as i64 {
                            let col = (nj * nx as i64 + ni) as u32;
                            let v = if col == row { 8.0 } else { -1.0 };
                            entries.push((col, v));
                        }
                    }
                }
                b.push_row(entries);
            }
        }
        b.finish()
    }

    #[test]
    fn greedy_two_colors_bipartite() {
        let a = laplacian_2d(6, 6);
        let c = greedy_coloring(&a);
        assert!(c.verify(&a));
        assert_eq!(c.num_colors, 2);
    }

    #[test]
    fn greedy_four_colors_9pt() {
        let a = stencil9_2d(8, 8);
        let c = greedy_coloring(&a);
        assert!(c.verify(&a));
        // The paper's figure 2: 4 independent sets for the 9-point stencil.
        assert_eq!(c.num_colors, 4);
    }

    #[test]
    fn jpl_valid_and_bounded_9pt() {
        let a = stencil9_2d(8, 8);
        let c = jpl_coloring(&a, 42);
        assert!(c.verify(&a));
        // JPL with random weights may use a few more colors than greedy,
        // but stays within a small constant of the chromatic number.
        assert!(c.num_colors >= 4 && c.num_colors <= 8, "got {}", c.num_colors);
    }

    #[test]
    fn jpl_is_deterministic_per_seed() {
        let a = stencil9_2d(6, 6);
        let c1 = jpl_coloring(&a, 7);
        let c2 = jpl_coloring(&a, 7);
        assert_eq!(c1, c2);
    }

    #[test]
    fn classes_partition_rows() {
        let a = stencil9_2d(5, 7);
        let c = jpl_coloring(&a, 1);
        let total: usize = c.rows_of.iter().map(|r| r.len()).sum();
        assert_eq!(total, a.nrows());
        let mut seen = vec![false; a.nrows()];
        for class in &c.rows_of {
            for &r in class {
                assert!(!seen[r as usize]);
                seen[r as usize] = true;
            }
        }
        assert_eq!(c.max_class_size(), c.rows_of.iter().map(|r| r.len()).max().unwrap());
    }

    #[test]
    fn verify_rejects_bad_coloring() {
        let a = laplacian_2d(4, 4);
        let bad = Coloring::from_color_of(vec![0; 16]);
        assert!(!bad.verify(&a));
    }

    #[test]
    fn ghost_columns_do_not_constrain() {
        // Two rows coupled only through a ghost column may share a color.
        let mut b = CsrBuilder::new(2, 3, 4);
        b.push_row([(0u32, 2.0), (2, -1.0)]);
        b.push_row([(1u32, 2.0), (2, -1.0)]);
        let a = b.finish();
        let c = greedy_coloring(&a);
        assert!(c.verify(&a));
        assert_eq!(c.num_colors, 1);
    }
}
