//! Row/column orderings: permutations, color-block ordering, and
//! reverse Cuthill–McKee.
//!
//! §3.2.1 of the paper reorders each rank's subdomain symmetrically with
//! an independent-set (multicolor) ordering to expose parallel work in
//! Gauss–Seidel, and cites Reverse Cuthill–McKee as the classic
//! alternative that preserves convergence better but parallelizes worse.
//! Both orderings are implemented here so the trade-off can be measured.

use crate::csr::CsrMatrix;
use crate::scalar::Scalar;

/// A bijection between "old" (natural/lexicographic) and "new"
/// (reordered) row indices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Permutation {
    new_of_old: Vec<u32>,
    old_of_new: Vec<u32>,
}

impl Permutation {
    /// Identity permutation on `n` indices.
    pub fn identity(n: usize) -> Self {
        let v: Vec<u32> = (0..n as u32).collect();
        Permutation { new_of_old: v.clone(), old_of_new: v }
    }

    /// Build from the *new order*: `order[k]` is the old index that
    /// becomes new index `k`. Panics unless `order` is a bijection.
    pub fn from_new_order(order: &[u32]) -> Self {
        let n = order.len();
        let mut new_of_old = vec![u32::MAX; n];
        for (new_i, &old_i) in order.iter().enumerate() {
            assert!((old_i as usize) < n, "index out of range");
            assert_eq!(new_of_old[old_i as usize], u32::MAX, "duplicate index {}", old_i);
            new_of_old[old_i as usize] = new_i as u32;
        }
        Permutation { new_of_old, old_of_new: order.to_vec() }
    }

    /// Size of the index set.
    pub fn len(&self) -> usize {
        self.new_of_old.len()
    }

    /// Whether this is the empty permutation.
    pub fn is_empty(&self) -> bool {
        self.new_of_old.is_empty()
    }

    /// New index of an old index.
    #[inline]
    pub fn new_of_old(&self, old: usize) -> usize {
        self.new_of_old[old] as usize
    }

    /// Old index of a new index.
    #[inline]
    pub fn old_of_new(&self, new: usize) -> usize {
        self.old_of_new[new] as usize
    }

    /// Permute a vector: `out[new_of_old[i]] = x[i]`.
    pub fn apply<S: Copy>(&self, x: &[S]) -> Vec<S> {
        assert_eq!(x.len(), self.len());
        let mut out = vec![x[0]; x.len()];
        for (old, &new) in self.new_of_old.iter().enumerate() {
            out[new as usize] = x[old];
        }
        out
    }

    /// Inverse-permute a vector: `out[i] = x[new_of_old[i]]`.
    pub fn apply_inverse<S: Copy>(&self, x: &[S]) -> Vec<S> {
        assert_eq!(x.len(), self.len());
        let mut out = vec![x[0]; x.len()];
        for (old, &new) in self.new_of_old.iter().enumerate() {
            out[old] = x[new as usize];
        }
        out
    }

    /// The inverse permutation as its own object.
    pub fn inverse(&self) -> Permutation {
        Permutation { new_of_old: self.old_of_new.clone(), old_of_new: self.new_of_old.clone() }
    }

    /// Remap a list of old row indices in place to new indices (used to
    /// translate halo send lists and injection maps after reordering).
    pub fn remap_indices(&self, idx: &mut [u32]) {
        for i in idx.iter_mut() {
            *i = self.new_of_old[*i as usize];
        }
    }
}

/// Order rows by color (stable within a color): all color-0 rows first,
/// then color-1, etc. This is the independent-set ordering of §3.2.1 —
/// after it, each color's rows form a contiguous block that a GPU (or a
/// thread pool) can sweep in parallel.
pub fn color_block_order(colors: &[u32]) -> Permutation {
    let ncolors = colors.iter().copied().max().map_or(0, |m| m as usize + 1);
    let mut order: Vec<u32> = Vec::with_capacity(colors.len());
    for c in 0..ncolors as u32 {
        for (i, &ci) in colors.iter().enumerate() {
            if ci == c {
                order.push(i as u32);
            }
        }
    }
    Permutation::from_new_order(&order)
}

/// Reverse Cuthill–McKee ordering of the owned block's graph.
///
/// Classic bandwidth-reducing ordering: BFS from a minimum-degree seed,
/// visiting neighbors in increasing-degree order, then reverse. Ghost
/// columns are ignored (each rank orders its subdomain independently,
/// as the paper prescribes).
pub fn rcm_order<S: Scalar>(a: &CsrMatrix<S>) -> Permutation {
    let n = a.nrows();
    if n == 0 {
        return Permutation::identity(0);
    }
    let degree = |i: usize| -> usize {
        let (cols, _) = a.row(i);
        cols.iter().filter(|&&c| (c as usize) < n && c as usize != i).count()
    };
    let mut visited = vec![false; n];
    let mut order: Vec<u32> = Vec::with_capacity(n);
    let mut queue = std::collections::VecDeque::new();
    let mut nbrs: Vec<u32> = Vec::new();

    // Cover every connected component (the stencil graph is connected,
    // but generality is cheap and keeps the function total).
    while let Some(seed) = (0..n).filter(|&i| !visited[i]).min_by_key(|&i| degree(i)) {
        visited[seed] = true;
        queue.push_back(seed as u32);
        while let Some(v) = queue.pop_front() {
            order.push(v);
            let (cols, _) = a.row(v as usize);
            nbrs.clear();
            nbrs.extend(
                cols.iter().copied().filter(|&c| {
                    (c as usize) < n && !visited[c as usize] && c as usize != v as usize
                }),
            );
            nbrs.sort_unstable_by_key(|&c| degree(c as usize));
            for &c in &nbrs {
                if !visited[c as usize] {
                    visited[c as usize] = true;
                    queue.push_back(c);
                }
            }
        }
    }
    order.reverse();
    Permutation::from_new_order(&order)
}

/// Half bandwidth of the owned block: `max |i - j|` over stored entries.
/// Used by tests to confirm RCM actually reduces bandwidth.
pub fn bandwidth<S: Scalar>(a: &CsrMatrix<S>) -> usize {
    let n = a.nrows();
    let mut bw = 0usize;
    for i in 0..n {
        let (cols, _) = a.row(i);
        for &c in cols {
            if (c as usize) < n {
                bw = bw.max(i.abs_diff(c as usize));
            }
        }
    }
    bw
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::CsrBuilder;

    fn path_graph(n: usize) -> CsrMatrix<f64> {
        let mut b = CsrBuilder::new(n, n, 3 * n);
        for i in 0..n {
            let mut row = Vec::new();
            if i > 0 {
                row.push(((i - 1) as u32, -1.0));
            }
            row.push((i as u32, 2.0));
            if i + 1 < n {
                row.push(((i + 1) as u32, -1.0));
            }
            b.push_row(row);
        }
        b.finish()
    }

    #[test]
    fn identity_roundtrip() {
        let p = Permutation::identity(5);
        let x = vec![1, 2, 3, 4, 5];
        assert_eq!(p.apply(&x), x);
        assert_eq!(p.apply_inverse(&x), x);
    }

    #[test]
    fn apply_and_inverse_cancel() {
        let p = Permutation::from_new_order(&[2, 0, 3, 1]);
        let x = vec![10.0, 20.0, 30.0, 40.0];
        assert_eq!(p.apply_inverse(&p.apply(&x)), x);
        assert_eq!(p.apply(&p.apply_inverse(&x)), x);
        // new 0 takes old 2.
        assert_eq!(p.apply(&x)[0], 30.0);
    }

    #[test]
    fn inverse_object_matches() {
        let p = Permutation::from_new_order(&[2, 0, 3, 1]);
        let pi = p.inverse();
        let x = vec![1.0, 2.0, 3.0, 4.0];
        assert_eq!(pi.apply(&x), p.apply_inverse(&x));
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn non_bijection_rejected() {
        Permutation::from_new_order(&[0, 0, 1]);
    }

    #[test]
    fn color_block_groups_rows() {
        let colors = vec![1, 0, 1, 0, 2];
        let p = color_block_order(&colors);
        // New order: old rows 1,3 (color 0), then 0,2 (color 1), then 4.
        assert_eq!(p.old_of_new(0), 1);
        assert_eq!(p.old_of_new(1), 3);
        assert_eq!(p.old_of_new(2), 0);
        assert_eq!(p.old_of_new(3), 2);
        assert_eq!(p.old_of_new(4), 4);
    }

    #[test]
    fn rcm_reduces_bandwidth_of_shuffled_path() {
        // Shuffle a path graph, then check RCM restores bandwidth 1.
        let a = path_graph(16);
        let shuffle =
            Permutation::from_new_order(&[7, 0, 12, 3, 15, 9, 1, 13, 5, 11, 2, 14, 6, 10, 4, 8]);
        let shuffled = a.symmetric_permute(&shuffle);
        assert!(bandwidth(&shuffled) > 1);
        let rcm = rcm_order(&shuffled);
        let restored = shuffled.symmetric_permute(&rcm);
        assert_eq!(bandwidth(&restored), 1);
    }

    #[test]
    fn remap_indices_translates() {
        let p = Permutation::from_new_order(&[2, 0, 1]);
        let mut idx = vec![0u32, 1, 2];
        p.remap_indices(&mut idx);
        // old 0 -> new 1, old 1 -> new 2, old 2 -> new 0.
        assert_eq!(idx, vec![1, 2, 0]);
    }
}
