//! Dense vector kernels: DOT, NRM2, WAXPBY, AXPY and the blocked
//! GEMV/GEMV-T pair that CGS2 orthogonalization batches its inner
//! products into (§3, §4.1).
//!
//! All kernels are generic over the working precision, and the mixed
//! `f64`/`f32` fused variants the optimized implementation runs on the
//! device (§3.2.5, removing the reference code's host round-trips) are
//! provided explicitly.
//!
//! Only *local* (per-rank) arithmetic lives here; distributed reductions
//! compose these with an all-reduce in the solver layer.

use crate::half::Half;
use crate::scalar::Scalar;
use crate::simd;
use core::any::TypeId;
use rayon::prelude::*;

/// Fixed reduction block for [`dot_par`]: partial sums are always
/// computed over `DOT_BLOCK`-element blocks regardless of thread
/// count, so the summation tree — and the bits of the result — depend
/// only on the vector length.
pub const DOT_BLOCK: usize = 1 << 14;

/// Leaf size for parallel elementwise kernels. Elementwise updates are
/// bit-identical at any chunking; this only tunes scheduling
/// granularity (32 KiB of f64 per leaf).
const ELEM_CHUNK: usize = 4096;

/// Local dot product `x · y`, sequential (the yardstick the
/// deterministic parallel reduction is built from).
///
/// `S = Half` routes to [`crate::half::dot_f16`]: one f32 accumulation
/// chain over batch-widened operands with a single final narrowing,
/// instead of rounding every partial sum back to fp16 — the semantics
/// of a hardware fp16 dot unit. All other precisions keep the
/// sequential fused chain below, whose order [`dot_par`]'s blocked
/// pairwise reduction depends on.
pub fn dot<S: Scalar>(x: &[S], y: &[S]) -> S {
    assert_eq!(x.len(), y.len());
    if TypeId::of::<S>() == TypeId::of::<Half>() {
        // SAFETY: S is exactly Half (repr(transparent) over u16).
        let xh = unsafe { std::slice::from_raw_parts(x.as_ptr() as *const Half, x.len()) };
        let yh = unsafe { std::slice::from_raw_parts(y.as_ptr() as *const Half, y.len()) };
        // Exact round-trip back into S (an f16 value survives
        // f64 → f16 unchanged).
        return S::from_f64(crate::half::dot_f16(xh, yh).to_f64());
    }
    let mut acc = S::ZERO;
    for (a, b) in x.iter().zip(y.iter()) {
        acc = a.mul_add(*b, acc);
    }
    acc
}

/// Deterministic pairwise sum over a slice of partial results: the
/// recursion shape depends only on `v.len()`.
fn pairwise_sum<S: Scalar>(v: &[S]) -> S {
    match v.len() {
        0 => S::ZERO,
        1 => v[0],
        2 => v[0] + v[1],
        n => {
            let (lo, hi) = v.split_at(n / 2);
            pairwise_sum(lo) + pairwise_sum(hi)
        }
    }
}

/// Parallel local dot product with a **deterministic blocked-pairwise
/// reduction**: per-block partial dots are computed in parallel but
/// collected in block order (the pool's `collect` preserves sequential
/// order), then combined by a pairwise tree whose shape depends only
/// on the vector length. The result is bit-identical for every
/// `RAYON_NUM_THREADS`, which is what keeps GMRES residual histories
/// reproducible across thread counts.
pub fn dot_par<S: Scalar>(x: &[S], y: &[S]) -> S {
    assert_eq!(x.len(), y.len());
    if x.len() <= DOT_BLOCK {
        return dot(x, y);
    }
    let partials: Vec<S> =
        x.par_chunks(DOT_BLOCK).zip(y.par_chunks(DOT_BLOCK)).map(|(xa, ya)| dot(xa, ya)).collect();
    pairwise_sum(&partials)
}

/// Local squared 2-norm.
pub fn norm2_sq<S: Scalar>(x: &[S]) -> S {
    dot(x, x)
}

/// Parallel local squared 2-norm with the deterministic blocked
/// reduction of [`dot_par`].
pub fn norm2_sq_par<S: Scalar>(x: &[S]) -> S {
    dot_par(x, x)
}

/// `w = alpha*x + beta*y` (HPCG's WAXPBY motif), parallel over chunks.
/// Elementwise, so the result is bit-identical at every thread count.
pub fn waxpby<S: Scalar>(alpha: S, x: &[S], beta: S, y: &[S], w: &mut [S]) {
    assert!(x.len() == y.len() && y.len() == w.len());
    w.par_chunks_mut(ELEM_CHUNK)
        .zip(x.par_chunks(ELEM_CHUNK))
        .zip(y.par_chunks(ELEM_CHUNK))
        .for_each(|((wc, xc), yc)| {
            if simd::try_waxpby(alpha, xc, beta, yc, wc) {
                return;
            }
            for ((wi, xi), yi) in wc.iter_mut().zip(xc).zip(yc) {
                *wi = (alpha * *xi).mul_add(S::ONE, beta * *yi);
            }
        });
}

/// `y += alpha * x`, parallel over chunks (bit-identical at every
/// thread count).
pub fn axpy<S: Scalar>(alpha: S, x: &[S], y: &mut [S]) {
    assert_eq!(x.len(), y.len());
    y.par_chunks_mut(ELEM_CHUNK).zip(x.par_chunks(ELEM_CHUNK)).for_each(|(yc, xc)| {
        if simd::try_axpy(alpha, xc, yc) {
            return;
        }
        for (yi, xi) in yc.iter_mut().zip(xc) {
            *yi = alpha.mul_add(*xi, *yi);
        }
    });
}

/// `x *= alpha`, parallel over chunks.
pub fn scal<S: Scalar>(alpha: S, x: &mut [S]) {
    x.par_chunks_mut(ELEM_CHUNK).for_each(|xc| {
        if simd::try_scal(alpha, xc) {
            return;
        }
        for xi in xc.iter_mut() {
            *xi *= alpha;
        }
    });
}

/// `y = x` for equal-length slices.
pub fn copy<S: Copy>(x: &[S], y: &mut [S]) {
    y.copy_from_slice(x);
}

/// Mixed-precision AXPY: `y (f64) += alpha * x (f32)`.
///
/// This is the solution-update kernel of GMRES-IR (line 47 of
/// Algorithm 3): the correction comes from the low-precision inner
/// solve, the accumulation happens in double. One code path: this is
/// the generic [`axpy_lo_into_f64`] instantiated at `f32` (same bits —
/// `f32::to_f64` is the `as f64` widening).
pub fn axpy_f32_into_f64(alpha: f64, x: &[f32], y: &mut [f64]) {
    axpy_lo_into_f64(alpha, x, y);
}

/// Mixed-precision scaled conversion: `lo = (hi * alpha) as f32`,
/// the residual hand-off kernel of GMRES-IR (f64 outer residual scaled
/// and narrowed into the f32 Krylov space). One code path: the generic
/// [`scale_f64_into_lo`] at `f32` (same bits — `f32::from_f64` is the
/// `as f32` rounding).
pub fn scale_f64_into_f32(alpha: f64, hi: &[f64], lo: &mut [f32]) {
    scale_f64_into_lo(alpha, hi, lo);
}

/// Generic narrowing hand-off `lo = (hi * alpha) as S` — lets GMRES-IR
/// run its inner solve at any low precision (f32 today, fp16 for the
/// paper's future-work study).
pub fn scale_f64_into_lo<S: Scalar>(alpha: f64, hi: &[f64], lo: &mut [S]) {
    assert_eq!(hi.len(), lo.len());
    lo.par_chunks_mut(ELEM_CHUNK).zip(hi.par_chunks(ELEM_CHUNK)).for_each(|(lc, hc)| {
        if simd::try_scale_narrow(alpha, hc, lc) {
            return;
        }
        for (l, h) in lc.iter_mut().zip(hc) {
            *l = S::from_f64(h * alpha);
        }
    });
}

/// Generic mixed AXPY: `y (f64) += alpha * x (S)` — the widening
/// counterpart of [`scale_f64_into_lo`] (Algorithm 3 line 47 at any
/// inner precision).
pub fn axpy_lo_into_f64<S: Scalar>(alpha: f64, x: &[S], y: &mut [f64]) {
    assert_eq!(x.len(), y.len());
    y.par_chunks_mut(ELEM_CHUNK).zip(x.par_chunks(ELEM_CHUNK)).for_each(|(yc, xc)| {
        if simd::try_axpy_acc(alpha, xc, yc) {
            return;
        }
        for (yi, xi) in yc.iter_mut().zip(xc) {
            *yi = alpha.mul_add(xi.to_f64(), *yi);
        }
    });
}

/// Widening-on-load dot product: operands stored in `Lo`, every
/// multiply-add accumulated in `Acc` (e.g. fp16-stored basis vectors
/// with f32 accumulation — the hardware-FMA semantics of tensor-style
/// units, applied to storage the memory wall cares about).
pub fn dot_acc<Lo: Scalar, Acc: Scalar>(x: &[Lo], y: &[Lo]) -> Acc {
    assert_eq!(x.len(), y.len());
    let mut acc = Acc::ZERO;
    if TypeId::of::<Lo>() != TypeId::of::<Acc>() {
        // Split storage: widen operand chunks in one batch (exact —
        // `from_scalar` is the same widening per element), then run
        // the identical fused chain. Bit-identical to the loop below.
        const CHUNK: usize = 256;
        let mut xw = [Acc::ZERO; CHUNK];
        let mut yw = [Acc::ZERO; CHUNK];
        let mut at = 0usize;
        while at < x.len() {
            let len = CHUNK.min(x.len() - at);
            crate::scalar::convert_slice(&x[at..at + len], &mut xw[..len]);
            crate::scalar::convert_slice(&y[at..at + len], &mut yw[..len]);
            for i in 0..len {
                acc = xw[i].mul_add(yw[i], acc);
            }
            at += len;
        }
        return acc;
    }
    for (a, b) in x.iter().zip(y.iter()) {
        acc = Acc::from_scalar(*a).mul_add(Acc::from_scalar(*b), acc);
    }
    acc
}

/// Widening-on-load squared 2-norm (see [`dot_acc`]).
pub fn norm2_sq_acc<Lo: Scalar, Acc: Scalar>(x: &[Lo]) -> Acc {
    dot_acc(x, x)
}

/// Widening AXPY with both operands in low precision and accumulation
/// in `Acc`: `y[i] = alpha * widen(x[i]) + y[i]` where `y` is an `Acc`
/// vector and `x` is stored narrow.
pub fn axpy_acc<Lo: Scalar, Acc: Scalar>(alpha: Acc, x: &[Lo], y: &mut [Acc]) {
    assert_eq!(x.len(), y.len());
    y.par_chunks_mut(ELEM_CHUNK).zip(x.par_chunks(ELEM_CHUNK)).for_each(|(yc, xc)| {
        if simd::try_axpy_acc(alpha, xc, yc) {
            return;
        }
        for (yi, xi) in yc.iter_mut().zip(xc) {
            *yi = alpha.mul_add(Acc::from_scalar(*xi), *yi);
        }
    });
}

/// Column-major Krylov basis storage `Q ∈ R^{n × max_cols}`.
///
/// GMRES stores every basis vector of the current restart cycle; CGS2
/// works on the block, which is why the paper calls orthogonalization a
/// dense BLAS-2 motif that benefits maximally from lower precision.
#[derive(Debug, Clone)]
pub struct Basis<S> {
    n: usize,
    max_cols: usize,
    data: Vec<S>,
}

impl<S: Scalar> Basis<S> {
    /// Allocate an `n × max_cols` basis initialized to zero.
    pub fn new(n: usize, max_cols: usize) -> Self {
        Basis { n, max_cols, data: vec![S::ZERO; n * max_cols] }
    }

    /// Local vector length.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Capacity in columns.
    pub fn max_cols(&self) -> usize {
        self.max_cols
    }

    /// Column `k` as a slice.
    #[inline]
    pub fn col(&self, k: usize) -> &[S] {
        &self.data[k * self.n..(k + 1) * self.n]
    }

    /// Column `k` as a mutable slice.
    #[inline]
    pub fn col_mut(&mut self, k: usize) -> &mut [S] {
        &mut self.data[k * self.n..(k + 1) * self.n]
    }

    /// GEMV-T: local part of `h = Q[:, 0..k]ᵀ · (col k)` — the batched
    /// inner products of one CGS2 pass. The caller all-reduces `h`
    /// before the subtraction.
    pub fn project_local(&self, k: usize) -> Vec<S> {
        let (head, tail) = self.data.split_at(k * self.n);
        let w = &tail[..self.n];
        (0..k).into_par_iter().map(|j| dot(&head[j * self.n..(j + 1) * self.n], w)).collect()
    }

    /// GEMV: `col k -= Q[:, 0..k] · h` — the update half of a CGS2
    /// pass. Parallel over row blocks of the target column; each block
    /// applies all `k` column updates in order, so the result is
    /// bit-identical to the sequential double loop.
    pub fn subtract(&mut self, k: usize, h: &[S]) {
        assert_eq!(h.len(), k);
        let n = self.n;
        let (head, tail) = self.data.split_at_mut(k * n);
        let head = &*head;
        let w = &mut tail[..n];
        w.par_chunks_mut(ELEM_CHUNK).enumerate().for_each(|(ci, wc)| {
            let off = ci * ELEM_CHUNK;
            for (j, &hj) in h.iter().enumerate() {
                let qj = &head[j * n + off..j * n + off + wc.len()];
                if simd::try_axpy(-hj, qj, wc) {
                    continue;
                }
                for (wi, qi) in wc.iter_mut().zip(qj.iter()) {
                    *wi = (-hj).mul_add(*qi, *wi);
                }
            }
        });
    }

    /// `col dst -= alpha · col src` with `src < dst` — the elementary
    /// update of modified Gram–Schmidt.
    pub fn axpy_cols(&mut self, src: usize, dst: usize, alpha: S) {
        assert!(src < dst, "source column must precede destination");
        let (head, tail) = self.data.split_at_mut(dst * self.n);
        let s = &head[src * self.n..(src + 1) * self.n];
        let d = &mut tail[..self.n];
        d.par_chunks_mut(ELEM_CHUNK).zip(s.par_chunks(ELEM_CHUNK)).for_each(|(dc, sc)| {
            if simd::try_axpy(-alpha, sc, dc) {
                return;
            }
            for (di, si) in dc.iter_mut().zip(sc.iter()) {
                *di = (-alpha).mul_add(*si, *di);
            }
        });
    }

    /// `out = Q[:, 0..k] · t` (the restart-time basis combination,
    /// line 46 of Algorithm 3).
    pub fn combine(&self, k: usize, t: &[S], out: &mut [S]) {
        assert_eq!(t.len(), k);
        assert_eq!(out.len(), self.n);
        for o in out.iter_mut() {
            *o = S::ZERO;
        }
        for (j, &tj) in t.iter().enumerate().take(k) {
            axpy(tj, self.col(j), out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_norm() {
        let x = vec![1.0f64, 2.0, 3.0];
        let y = vec![4.0f64, -5.0, 6.0];
        assert_eq!(dot(&x, &y), 4.0 - 10.0 + 18.0);
        assert_eq!(norm2_sq(&x), 14.0);
        assert_eq!(dot_par(&x, &y), dot(&x, &y));
    }

    #[test]
    fn dot_par_large_matches_serial_closely() {
        let x: Vec<f64> = (0..100_000).map(|i| ((i % 97) as f64) * 1e-3).collect();
        let y: Vec<f64> = (0..100_000).map(|i| ((i % 89) as f64) * 1e-3 - 0.04).collect();
        let a = dot(&x, &y);
        let b = dot_par(&x, &y);
        assert!((a - b).abs() < 1e-9 * a.abs().max(1.0));
    }

    #[test]
    fn dot_par_is_bit_identical_across_thread_counts() {
        let x: Vec<f64> = (0..3 * DOT_BLOCK + 17).map(|i| ((i * 37 % 1013) as f64).sin()).collect();
        let y: Vec<f64> = (0..x.len()).map(|i| ((i * 53 % 997) as f64).cos()).collect();
        let reference = dot_par(&x, &y);
        for threads in [1, 2, 8] {
            let pool = rayon::ThreadPool::new(threads);
            let d = pool.install(|| dot_par(&x, &y));
            assert_eq!(d.to_bits(), reference.to_bits(), "threads = {threads}");
        }
    }

    #[test]
    fn dot_par_below_one_block_equals_serial_exactly() {
        let x: Vec<f64> = (0..4096).map(|i| (i as f64).sqrt()).collect();
        assert_eq!(dot_par(&x, &x).to_bits(), dot(&x, &x).to_bits());
    }

    #[test]
    fn waxpby_axpy_scal() {
        let x = vec![1.0f64, 2.0];
        let y = vec![10.0f64, 20.0];
        let mut w = vec![0.0f64; 2];
        waxpby(2.0, &x, 0.5, &y, &mut w);
        assert_eq!(w, vec![7.0, 14.0]);
        let mut y2 = y.clone();
        axpy(3.0, &x, &mut y2);
        assert_eq!(y2, vec![13.0, 26.0]);
        scal(0.5, &mut y2);
        assert_eq!(y2, vec![6.5, 13.0]);
    }

    #[test]
    fn mixed_axpy_accumulates_in_double() {
        // A correction of 1e-9 is far below f32 resolution around 1.0
        // but must survive in the f64 accumulator.
        let x = vec![1.0f32; 4];
        let mut y = vec![1.0f64; 4];
        axpy_f32_into_f64(1e-9, &x, &mut y);
        for v in &y {
            assert!((v - (1.0 + 1e-9)).abs() < 1e-16);
            // The same update in f32 would have been lost entirely.
            assert_eq!(1.0f32 + 1e-9f32, 1.0f32);
        }
    }

    #[test]
    fn scaled_narrowing() {
        let hi = vec![2.0f64, -4.0, 8.0];
        let mut lo = vec![0.0f32; 3];
        scale_f64_into_f32(0.5, &hi, &mut lo);
        assert_eq!(lo, vec![1.0f32, -2.0, 4.0]);
    }

    #[test]
    fn generic_narrowing_matches_specialized() {
        let hi = vec![2.0f64, -4.0, 8.0];
        let mut a = vec![0.0f32; 3];
        let mut b = vec![0.0f32; 3];
        scale_f64_into_f32(0.25, &hi, &mut a);
        scale_f64_into_lo(0.25, &hi, &mut b);
        assert_eq!(a, b);
        // And round-trips through f64 via the generic widening axpy.
        let mut back = vec![0.0f64; 3];
        axpy_lo_into_f64(4.0, &b, &mut back);
        assert_eq!(back, hi);
    }

    #[test]
    fn generic_axpy_keeps_f64_resolution() {
        let x = vec![1.0f32; 2];
        let mut y = vec![1.0f64; 2];
        axpy_lo_into_f64(1e-9, &x, &mut y);
        for v in &y {
            assert!((v - (1.0 + 1e-9)).abs() < 1e-16);
        }
    }

    #[test]
    fn widening_dot_accumulates_past_the_storage_precision() {
        use crate::half::Half;
        // 4096 fp16 ones dotted with themselves: fp16 accumulation
        // would saturate at 2048; f32 accumulation is exact.
        let x: Vec<Half> = vec![Half::ONE; 4096];
        let d: f32 = dot_acc(&x, &x);
        assert_eq!(d, 4096.0);
        let n: f32 = norm2_sq_acc(&x);
        assert_eq!(n, 4096.0);
        // Same-precision instantiation matches the plain dot bitwise.
        let y: Vec<f64> = (0..100).map(|i| (i as f64 * 0.3).sin()).collect();
        let a: f64 = dot_acc(&y, &y);
        assert_eq!(a.to_bits(), dot(&y, &y).to_bits());
    }

    #[test]
    fn widening_axpy_keeps_accumulator_resolution() {
        use crate::half::Half;
        let x = vec![Half::ONE; 8];
        let mut y = vec![1.0f32; 8];
        // 1e-6 is far below fp16 resolution around 1.0 but must
        // survive in the f32 accumulator.
        axpy_acc(1e-6f32, &x, &mut y);
        for v in &y {
            assert_eq!(*v, 1.0 + 1e-6);
        }
    }

    #[test]
    fn basis_projection_and_subtraction_orthogonalize() {
        // Two orthonormal columns; a third gets CGS-projected against them.
        let n = 4;
        let mut q: Basis<f64> = Basis::new(n, 3);
        q.col_mut(0).copy_from_slice(&[1.0, 0.0, 0.0, 0.0]);
        q.col_mut(1).copy_from_slice(&[0.0, 1.0, 0.0, 0.0]);
        q.col_mut(2).copy_from_slice(&[3.0, 4.0, 5.0, 0.0]);
        let h = q.project_local(2);
        assert_eq!(h, vec![3.0, 4.0]);
        q.subtract(2, &h);
        assert_eq!(q.col(2), &[0.0, 0.0, 5.0, 0.0]);
        // Now orthogonal to both prior columns.
        assert_eq!(dot(q.col(2), q.col(0)), 0.0);
        assert_eq!(dot(q.col(2), q.col(1)), 0.0);
    }

    #[test]
    fn basis_combine() {
        let n = 3;
        let mut q: Basis<f64> = Basis::new(n, 2);
        q.col_mut(0).copy_from_slice(&[1.0, 2.0, 3.0]);
        q.col_mut(1).copy_from_slice(&[0.0, 1.0, 0.0]);
        let mut out = vec![0.0; 3];
        q.combine(2, &[2.0, -1.0], &mut out);
        assert_eq!(out, vec![2.0, 3.0, 6.0]);
    }

    #[test]
    fn basis_generic_over_f32() {
        let mut q: Basis<f32> = Basis::new(2, 2);
        q.col_mut(0).copy_from_slice(&[0.6, 0.8]);
        q.col_mut(1).copy_from_slice(&[1.0, 0.0]);
        let h = q.project_local(1);
        assert!((h[0] - 0.6).abs() < 1e-6);
        q.subtract(1, &h);
        let c = q.col(1);
        assert!((dot(c, q.col(0))).abs() < 1e-6);
    }
}
