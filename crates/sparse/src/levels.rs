//! Level scheduling of triangular sweeps.
//!
//! The *reference* HPG-MxP implementation parallelizes its Gauss–Seidel
//! triangular solves with level scheduling (Naumov's cuSPARSE/rocSPARSE
//! approach, §3.1 item 1): row `i` depends on every row `j < i` with
//! `a_ij ≠ 0`, so rows whose longest dependency chain has equal length
//! form a "level" that can be processed in parallel. Level scheduling is
//! *mathematically identical* to the sequential lexicographic sweep —
//! unlike multicoloring it does not perturb the preconditioner — but for
//! stencil matrices the number of levels grows with the subdomain
//! diameter, so the exposed parallelism is limited (the effect the paper
//! measures as poor GPU utilization).

use crate::csr::CsrMatrix;
use crate::scalar::Scalar;

/// A level schedule of the lower-triangular dependency DAG of a matrix
/// in its current row order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LevelSchedule {
    /// Rows grouped by level, levels in dependency order. Within a
    /// level, rows are in increasing index order.
    pub levels: Vec<Vec<u32>>,
    /// Level of each row (inverse of `levels`).
    pub level_of: Vec<u32>,
}

impl LevelSchedule {
    /// Build the schedule for the forward (lower-triangular) sweep of
    /// `a`'s owned block. Ghost columns impose no ordering (their values
    /// are frozen inputs during a local sweep).
    pub fn build<S: Scalar>(a: &CsrMatrix<S>) -> Self {
        let n = a.nrows();
        let mut level_of = vec![0u32; n];
        let mut max_level = 0u32;
        for i in 0..n {
            let (cols, _) = a.row(i);
            let mut lvl = 0u32;
            for &c in cols {
                let j = c as usize;
                if j < i {
                    lvl = lvl.max(level_of[j] + 1);
                }
            }
            level_of[i] = lvl;
            max_level = max_level.max(lvl);
        }
        let mut levels = vec![Vec::new(); max_level as usize + 1];
        for (i, &l) in level_of.iter().enumerate() {
            levels[l as usize].push(i as u32);
        }
        LevelSchedule { levels, level_of }
    }

    /// Number of levels (the critical path length of the sweep).
    pub fn num_levels(&self) -> usize {
        self.levels.len()
    }

    /// Average rows per level — the mean parallelism the schedule
    /// exposes; the quantity that is small for stencil matrices in
    /// lexicographic order and large after multicoloring.
    pub fn mean_parallelism(&self) -> f64 {
        if self.levels.is_empty() {
            return 0.0;
        }
        self.level_of.len() as f64 / self.levels.len() as f64
    }

    /// Check the defining property: every lower-triangular dependency
    /// goes from a strictly earlier level.
    pub fn verify<S: Scalar>(&self, a: &CsrMatrix<S>) -> bool {
        let n = a.nrows();
        for i in 0..n {
            let (cols, _) = a.row(i);
            for &c in cols {
                let j = c as usize;
                if j < i && self.level_of[j] >= self.level_of[i] {
                    return false;
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::CsrBuilder;

    fn tridiag(n: usize) -> CsrMatrix<f64> {
        let mut b = CsrBuilder::new(n, n, 3 * n);
        for i in 0..n {
            let mut row = Vec::new();
            if i > 0 {
                row.push(((i - 1) as u32, -1.0));
            }
            row.push((i as u32, 2.0));
            if i + 1 < n {
                row.push(((i + 1) as u32, -1.0));
            }
            b.push_row(row);
        }
        b.finish()
    }

    #[test]
    fn chain_has_n_levels() {
        // A tridiagonal matrix's forward sweep is fully sequential.
        let a = tridiag(10);
        let s = LevelSchedule::build(&a);
        assert_eq!(s.num_levels(), 10);
        assert!((s.mean_parallelism() - 1.0).abs() < 1e-12);
        assert!(s.verify(&a));
    }

    #[test]
    fn diagonal_matrix_is_one_level() {
        let mut b = CsrBuilder::new(4, 4, 4);
        for i in 0..4u32 {
            b.push_row([(i, 1.0)]);
        }
        let a = b.finish();
        let s = LevelSchedule::build(&a);
        assert_eq!(s.num_levels(), 1);
        assert_eq!(s.levels[0], vec![0, 1, 2, 3]);
    }

    #[test]
    fn levels_partition_rows() {
        let a = tridiag(17);
        let s = LevelSchedule::build(&a);
        let total: usize = s.levels.iter().map(|l| l.len()).sum();
        assert_eq!(total, 17);
    }

    #[test]
    fn stencil_levels_grow_with_diameter() {
        // For a 2D 5-point stencil on an n×n grid in lexicographic order,
        // the forward dependency levels are the anti-diagonals: 2n-1 of
        // them. This is the limited parallelism the paper criticizes.
        let nx = 6;
        let n = nx * nx;
        let mut b = CsrBuilder::new(n, n, 5 * n);
        for j in 0..nx {
            for i in 0..nx {
                let row = j * nx + i;
                let mut e = Vec::new();
                if j > 0 {
                    e.push(((row - nx) as u32, -1.0));
                }
                if i > 0 {
                    e.push(((row - 1) as u32, -1.0));
                }
                e.push((row as u32, 4.0));
                if i + 1 < nx {
                    e.push(((row + 1) as u32, -1.0));
                }
                if j + 1 < nx {
                    e.push(((row + nx) as u32, -1.0));
                }
                b.push_row(e);
            }
        }
        let a = b.finish();
        let s = LevelSchedule::build(&a);
        assert_eq!(s.num_levels(), 2 * nx - 1);
        assert!(s.verify(&a));
    }
}
