//! The declarative side of the campaign harness: what to run.
//!
//! A [`CampaignSpec`] is plain serde data (shipped as `campaigns/*.json`
//! at the repository root) declaring the experiment axes — local box,
//! multigrid depth, restart length, thread-rank counts, precision
//! policies (by name or inline), implementation variants, and modeled
//! node counts against a named machine + network model — plus one
//! [`SeriesMode`] per series saying how its cells are produced:
//! measured on this box, projected by the machine model, or both with
//! an exact byte-model reconciliation (Hybrid).

use hpgmxp_core::config::{BenchmarkParams, ImplVariant};
use hpgmxp_core::policy::PrecisionPolicy;
use hpgmxp_machine::{MachineModel, NetworkModel};
use serde::{Deserialize, Serialize};

/// Version of the campaign-spec JSON layout.
pub const SPEC_SCHEMA: u32 = 1;

/// How a series produces its cells.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SeriesMode {
    /// Real runs over `ThreadWorld` thread-ranks
    /// (`core::benchmark::{run_phase, run_policy_phase,
    /// validate_policy_checked}`): one cell per policy × rank count.
    Measured,
    /// Machine-model projections (`machine::simulate`): one cell per
    /// policy × node count.
    Modeled,
    /// Both, reconciled: measured cells ground the modeled ones (the
    /// measured iteration penalty feeds the projection) and the
    /// engine *asserts* that the measured matrix + halo traffic of
    /// every policy agrees exactly with the machine model's
    /// `Workload::policy_*_bytes`, as `ablation_study` pioneered.
    Hybrid,
}

/// A precision scenario reference: a shipped policy by name, an inline
/// policy definition, or one of the two reserved classic solvers.
///
/// Reserved names (resolved ahead of the shipped policy list):
///
/// * `"mxp"` — the classic mixed-precision benchmark pair (GMRES-IR
///   with the fp32 inner solve; measured via `run_phase(mixed)`,
///   modeled via the classic `mixed`/`inner_bytes` path);
/// * `"double"` — pure-f64 GMRES (the "double" reference phase).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PolicyRef {
    /// Name of a shipped policy (`PrecisionPolicy::by_name`) or a
    /// reserved classic solver (`"mxp"` / `"double"`).
    pub name: Option<String>,
    /// Inline policy definition (wins over `name` when both are set).
    pub inline: Option<PrecisionPolicy>,
}

/// A resolved [`PolicyRef`]: which solver a cell runs or models.
#[derive(Debug, Clone, PartialEq)]
pub enum SeriesSolver {
    /// Classic mixed-precision GMRES-IR (fp32 inner solve).
    ClassicMixed,
    /// Classic pure-f64 GMRES.
    ClassicDouble,
    /// A runtime precision policy.
    Policy(PrecisionPolicy),
}

impl SeriesSolver {
    /// Short label used in report cells.
    pub fn label(&self) -> &str {
        match self {
            SeriesSolver::ClassicMixed => "mxp",
            SeriesSolver::ClassicDouble => "double",
            SeriesSolver::Policy(p) => &p.name,
        }
    }
}

impl PolicyRef {
    /// Reference a shipped policy or reserved solver by name.
    pub fn by_name(name: &str) -> Self {
        PolicyRef { name: Some(name.to_string()), inline: None }
    }

    /// Reference an inline policy definition.
    pub fn inline(policy: PrecisionPolicy) -> Self {
        PolicyRef { name: None, inline: Some(policy) }
    }

    /// Resolve to a concrete solver.
    pub fn resolve(&self) -> Result<SeriesSolver, String> {
        if let Some(p) = &self.inline {
            return Ok(SeriesSolver::Policy(p.clone()));
        }
        match self.name.as_deref() {
            Some("mxp") => Ok(SeriesSolver::ClassicMixed),
            Some("double") => Ok(SeriesSolver::ClassicDouble),
            Some(n) => PrecisionPolicy::by_name(n)
                .map(SeriesSolver::Policy)
                .ok_or_else(|| format!("unknown policy `{n}` (and no inline definition)")),
            None => Err("policy reference needs a `name` or an `inline` definition".to_string()),
        }
    }
}

/// One series of a campaign: a set of cells sharing a mode, a variant,
/// and axis lists whose cross-product the engine plans.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SeriesSpec {
    /// Series label in the report.
    pub label: String,
    /// How cells are produced.
    pub mode: SeriesMode,
    /// Implementation variant of every cell.
    pub variant: ImplVariant,
    /// Precision scenarios (one sub-series per entry).
    pub policies: Vec<PolicyRef>,
    /// Thread-rank counts of measured cells (Measured/Hybrid).
    pub ranks: Vec<usize>,
    /// Node counts of modeled cells (Modeled/Hybrid).
    pub nodes: Vec<usize>,
    /// Local box of the modeled cells, when it differs from the
    /// campaign's measured box (e.g. this box measures 16³ while the
    /// projection runs the paper's 320³ operating point). `null` =
    /// the campaign local box.
    pub modeled_local: Option<(u32, u32, u32)>,
    /// Iteration penalty `min(1, n_d/n_ir)` applied to modeled cells.
    /// `null`: Hybrid series use the penalty their own measured
    /// validation produced; Modeled series default to 1.0.
    pub penalty: Option<f64>,
}

/// A complete declarative campaign.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignSpec {
    /// Spec layout version (see [`SPEC_SCHEMA`]).
    pub schema: u32,
    /// Campaign name (used in the report and output file names).
    pub name: String,
    /// One-line description.
    pub description: String,
    /// Local box per rank of measured cells.
    pub local: (u32, u32, u32),
    /// Multigrid levels.
    pub mg_levels: usize,
    /// GMRES restart length.
    pub restart: usize,
    /// Inner iterations per timed solve of measured cells.
    pub iters_per_solve: usize,
    /// Timed solves per measured cell.
    pub benchmark_solves: usize,
    /// Iteration cap of the validation solves.
    pub validation_max_iters: usize,
    /// Machine-model preset of modeled cells: `"mi250x_gcd"`,
    /// `"k80_die"`, or `"cpu_socket"`.
    pub machine: String,
    /// Network-model preset: `"frontier_slingshot"`, `"commodity_ib"`,
    /// or `"shared_memory"`.
    pub network: String,
    /// The series to run.
    pub series: Vec<SeriesSpec>,
}

impl CampaignSpec {
    /// Resolve the machine-model preset.
    pub fn machine_model(&self) -> Result<MachineModel, String> {
        match self.machine.as_str() {
            "mi250x_gcd" => Ok(MachineModel::mi250x_gcd()),
            "k80_die" => Ok(MachineModel::k80_die()),
            "cpu_socket" => Ok(MachineModel::cpu_socket()),
            other => Err(format!(
                "unknown machine preset `{other}` (want mi250x_gcd | k80_die | cpu_socket)"
            )),
        }
    }

    /// Resolve the network-model preset.
    pub fn network_model(&self) -> Result<NetworkModel, String> {
        match self.network.as_str() {
            "frontier_slingshot" => Ok(NetworkModel::frontier_slingshot()),
            "commodity_ib" => Ok(NetworkModel::commodity_ib()),
            "shared_memory" => Ok(NetworkModel::shared_memory()),
            other => Err(format!(
                "unknown network preset `{other}` \
                 (want frontier_slingshot | commodity_ib | shared_memory)"
            )),
        }
    }

    /// Benchmark parameters of the measured cells.
    pub fn params(&self) -> BenchmarkParams {
        BenchmarkParams {
            local_dims: self.local,
            mg_levels: self.mg_levels,
            restart: self.restart,
            max_iters_per_solve: self.iters_per_solve,
            benchmark_solves: self.benchmark_solves.max(1),
            validation_max_iters: self.validation_max_iters,
            ..Default::default()
        }
    }

    /// Check the spec for shape errors before any work starts.
    pub fn validate(&self) -> Result<(), String> {
        if self.schema != SPEC_SCHEMA {
            return Err(format!("spec schema {} != supported {}", self.schema, SPEC_SCHEMA));
        }
        if self.series.is_empty() {
            return Err("campaign has no series".to_string());
        }
        self.machine_model()?;
        self.network_model()?;
        if self.mg_levels == 0 || self.mg_levels > hpgmxp_core::policy::MAX_LEVELS {
            return Err(format!(
                "mg_levels {} outside 1..={} (the policy engine's hierarchy bound)",
                self.mg_levels,
                hpgmxp_core::policy::MAX_LEVELS
            ));
        }
        let div = 1u32 << (self.mg_levels - 1);
        let divisible = |d: (u32, u32, u32)| {
            d.0.is_multiple_of(div) && d.1.is_multiple_of(div) && d.2.is_multiple_of(div)
        };
        if !divisible(self.local) {
            return Err(format!(
                "local dims {:?} not divisible by 2^(mg_levels-1) = {div}",
                self.local
            ));
        }
        for s in &self.series {
            if s.policies.is_empty() {
                return Err(format!("series `{}` has no policies", s.label));
            }
            for p in &s.policies {
                p.resolve().map_err(|e| format!("series `{}`: {e}", s.label))?;
            }
            let needs_measured = matches!(s.mode, SeriesMode::Measured | SeriesMode::Hybrid);
            if needs_measured && s.ranks.is_empty() {
                return Err(format!("series `{}` is {:?} but lists no ranks", s.label, s.mode));
            }
            // A Hybrid series without nodes is legitimate: measured
            // cells + byte reconciliation, no projection.
            if s.mode == SeriesMode::Modeled && s.nodes.is_empty() {
                return Err(format!("series `{}` is Modeled but lists no nodes", s.label));
            }
            // Reject axis lists the mode would silently drop — a
            // declared cell either runs or the spec is an error.
            if s.mode == SeriesMode::Measured && !s.nodes.is_empty() {
                return Err(format!(
                    "series `{}` is Measured but lists nodes {:?} that would never run \
                     (use Hybrid or Modeled for projections)",
                    s.label, s.nodes
                ));
            }
            if s.mode == SeriesMode::Modeled && !s.ranks.is_empty() {
                return Err(format!(
                    "series `{}` is Modeled but lists ranks {:?} that would never run \
                     (use Hybrid or Measured for real runs)",
                    s.label, s.ranks
                ));
            }
            if let Some(d) = s.modeled_local {
                if !divisible(d) {
                    return Err(format!(
                        "series `{}`: modeled_local {:?} not divisible by {div}",
                        s.label, d
                    ));
                }
            }
            if s.ranks.contains(&0) || s.nodes.contains(&0) {
                return Err(format!("series `{}`: zero rank/node count", s.label));
            }
        }
        Ok(())
    }

    /// Parse a spec from JSON, validating it.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let spec: CampaignSpec =
            serde_json::from_str(text).map_err(|e| format!("bad campaign spec: {e}"))?;
        spec.validate()?;
        Ok(spec)
    }

    /// Serialize to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("campaign spec serializes")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpgmxp_sparse::PrecKind;

    pub(crate) fn tiny_spec() -> CampaignSpec {
        CampaignSpec {
            schema: SPEC_SCHEMA,
            name: "tiny".into(),
            description: "unit-test campaign".into(),
            local: (8, 8, 8),
            mg_levels: 2,
            restart: 30,
            iters_per_solve: 10,
            benchmark_solves: 1,
            validation_max_iters: 400,
            machine: "mi250x_gcd".into(),
            network: "frontier_slingshot".into(),
            series: vec![SeriesSpec {
                label: "demo".into(),
                mode: SeriesMode::Modeled,
                variant: ImplVariant::Optimized,
                policies: vec![PolicyRef::by_name("f32")],
                ranks: vec![],
                nodes: vec![1, 8],
                modeled_local: Some((64, 64, 64)),
                penalty: Some(0.9),
            }],
        }
    }

    #[test]
    fn spec_roundtrips_through_json() {
        let spec = tiny_spec();
        let json = spec.to_json();
        let back = CampaignSpec::from_json(&json).unwrap();
        assert_eq!(spec, back);
    }

    #[test]
    fn reserved_names_resolve_to_classic_solvers() {
        assert_eq!(PolicyRef::by_name("mxp").resolve().unwrap(), SeriesSolver::ClassicMixed);
        assert_eq!(PolicyRef::by_name("double").resolve().unwrap(), SeriesSolver::ClassicDouble);
        let f32p = PolicyRef::by_name("f32").resolve().unwrap();
        assert_eq!(f32p.label(), "f32");
        assert!(PolicyRef::by_name("nope").resolve().is_err());
    }

    #[test]
    fn optional_keys_may_be_omitted_in_hand_authored_json() {
        // The serde shim's derive treats a missing key on an Option
        // field as null, so spec files need not spell out every
        // optional axis.
        let r: PolicyRef = serde_json::from_str(r#"{"name": "f64"}"#).unwrap();
        assert_eq!(r, PolicyRef::by_name("f64"));
        let s: SeriesSpec = serde_json::from_str(
            r#"{"label": "s", "mode": "Modeled", "variant": "Optimized",
                "policies": [{"name": "mxp"}], "ranks": [], "nodes": [8]}"#,
        )
        .unwrap();
        assert_eq!(s.modeled_local, None);
        assert_eq!(s.penalty, None);
    }

    #[test]
    fn inline_policy_wins_over_name() {
        let custom = PrecisionPolicy::uniform("custom", PrecKind::F16, PrecKind::F32);
        let r = PolicyRef { name: Some("f64".into()), inline: Some(custom.clone()) };
        assert_eq!(r.resolve().unwrap(), SeriesSolver::Policy(custom));
    }

    #[test]
    fn validation_catches_shape_errors() {
        let mut bad = tiny_spec();
        bad.series[0].nodes.clear();
        assert!(bad.validate().is_err(), "Modeled series without nodes");

        let mut bad = tiny_spec();
        bad.local = (9, 8, 8);
        assert!(bad.validate().is_err(), "non-divisible local dims");

        let mut bad = tiny_spec();
        bad.machine = "cray1".into();
        assert!(bad.validate().is_err(), "unknown machine preset");

        let mut bad = tiny_spec();
        bad.mg_levels = 33; // would overflow the divisibility shift
        assert!(bad.validate().is_err(), "mg_levels beyond the hierarchy bound");
        bad.mg_levels = 0;
        assert!(bad.validate().is_err(), "zero mg_levels");

        let mut bad = tiny_spec();
        bad.schema = 999;
        assert!(bad.validate().is_err(), "future schema");

        let mut bad = tiny_spec();
        bad.series[0].mode = SeriesMode::Hybrid;
        assert!(bad.validate().is_err(), "Hybrid without ranks");
        bad.series[0].ranks = vec![2];
        assert!(bad.validate().is_ok());
    }
}
