//! Measured kernel traffic and its exact reconciliation against the
//! policy-aware machine model — the Hybrid mode's contract.
//!
//! One SpMV application plus one GS sweep run on the fine level of a
//! P=2 decomposition (both ranks share the middle-rank surface, so the
//! measured wire bytes match the model's middle-rank closed form
//! exactly), accumulating bytes from the actual data structures the
//! kernels traverse. [`reconcile`] then compares each share against
//! [`Workload::policy_matrix_bytes`] / [`Workload::policy_value_bytes`]
//! / [`Workload::policy_wire_bytes`] and fails loudly on any drift —
//! the same assertion `ablation_study` established, now owned by the
//! campaign engine.

use hpgmxp_comm::{run_spmd, Comm, Timeline};
use hpgmxp_core::config::{BenchmarkParams, ImplVariant};
use hpgmxp_core::motifs::{Motif, MotifStats};
use hpgmxp_core::ops::{dist_gs_sweep, dist_spmv, OpCtx, SweepDir};
use hpgmxp_core::policy::PrecisionPolicy;
use hpgmxp_core::problem::{assemble_with_policy, Level, ProblemSpec};
use hpgmxp_machine::workload::Workload;
use hpgmxp_sparse::{Half, PrecKind, Scalar};

/// Thread-rank count byte reconciliation runs at: the decomposition
/// where every rank's surface equals the model's middle-rank surface.
pub const RECONCILE_RANKS: usize = 2;

/// Per-policy measured fine-grid kernel traffic: one SpMV application
/// plus one GS sweep on the fine level of rank 0.
#[derive(Debug, Clone, Copy)]
pub struct MeasuredTraffic {
    /// Matrix-value bytes of one SpMV (storage precision).
    pub spmv_value: f64,
    /// Total data bytes of one SpMV.
    pub spmv_total: f64,
    /// Wire bytes of one halo exchange.
    pub wire: f64,
    /// Matrix-value bytes of one GS sweep.
    pub gs_value: f64,
}

fn measure_in<S: Scalar, C: Comm>(
    c: &C,
    level: &Level,
    policy: &PrecisionPolicy,
) -> MeasuredTraffic {
    let tl = Timeline::disabled();
    let ctx = OpCtx::with_prec(c, ImplVariant::Optimized, &tl, policy.ctx());
    let n = level.vec_len();
    let mut x: Vec<S> = (0..n).map(|i| S::from_f64(((i % 13) as f64) * 0.05)).collect();
    let mut y = vec![S::ZERO; level.n_local()];
    let mut spmv_stats = MotifStats::new();
    dist_spmv(&ctx, level, &mut spmv_stats, 10, &mut x, &mut y);
    let mut gs_stats = MotifStats::new();
    let r: Vec<S> = (0..level.n_local()).map(|i| S::from_f64((i % 7) as f64)).collect();
    dist_gs_sweep(&ctx, level, &mut gs_stats, 11, SweepDir::Forward, &r, &mut x);
    MeasuredTraffic {
        spmv_value: spmv_stats.value_bytes(Motif::SpMV),
        spmv_total: spmv_stats.bytes(Motif::SpMV),
        wire: spmv_stats.bytes(Motif::Comm),
        gs_value: gs_stats.value_bytes(Motif::GaussSeidel),
    }
}

/// Measure one policy's fine-grid kernel traffic on a `RECONCILE_RANKS`
/// thread-rank world.
pub fn measure_policy(params: &BenchmarkParams, policy: &PrecisionPolicy) -> MeasuredTraffic {
    let spec = ProblemSpec::from_params(params, RECONCILE_RANKS);
    let policy = policy.clone();
    let results = run_spmd(RECONCILE_RANKS, move |c| {
        let prob = assemble_with_policy(&spec, c.rank(), &policy);
        let l = &prob.levels[0];
        match policy.compute {
            PrecKind::F64 => measure_in::<f64, _>(&c, l, &policy),
            PrecKind::F32 => measure_in::<f32, _>(&c, l, &policy),
            PrecKind::F16 => measure_in::<Half, _>(&c, l, &policy),
        }
    });
    results[0]
}

fn close(a: f64, b: f64, what: &str) -> Result<(), String> {
    if (a - b).abs() <= 1e-9 * a.abs().max(b.abs()).max(1.0) {
        Ok(())
    } else {
        Err(format!("{what}: measured {a} vs modeled {b} do not reconcile"))
    }
}

/// Measure a policy's fine-grid traffic and assert exact agreement
/// with the machine model's policy byte accounting. Returns the
/// measured traffic on success; a description of the first drift on
/// failure.
pub fn reconcile(
    params: &BenchmarkParams,
    policy: &PrecisionPolicy,
) -> Result<MeasuredTraffic, String> {
    let m = measure_policy(params, policy);
    let wl = Workload::build(params.local_dims, params.mg_levels, params.restart, RECONCILE_RANKS);
    let name = &policy.name;
    close(m.spmv_value, wl.policy_value_bytes(policy, 0), &format!("{name} spmv value"))?;
    close(m.gs_value, wl.policy_value_bytes(policy, 0), &format!("{name} gs value"))?;
    close(
        m.spmv_total,
        wl.policy_matrix_bytes(policy, 0) + 2.0 * wl.fine().n * policy.compute.bytes() as f64,
        &format!("{name} spmv total"),
    )?;
    close(m.wire, wl.policy_wire_bytes(policy, 0), &format!("{name} wire"))?;
    Ok(m)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> BenchmarkParams {
        BenchmarkParams { local_dims: (8, 8, 8), mg_levels: 2, ..Default::default() }
    }

    #[test]
    fn every_shipped_policy_reconciles() {
        for p in PrecisionPolicy::shipped() {
            let m = reconcile(&params(), &p).unwrap_or_else(|e| panic!("{e}"));
            assert!(m.spmv_value > 0.0 && m.wire > 0.0);
        }
    }

    #[test]
    fn stress_f16_traffic_reconciles_too() {
        // Breakdown is a solver property; the byte accounting of the
        // fp16 kernels is still exact.
        let m = reconcile(&params(), &PrecisionPolicy::stress_f16()).unwrap();
        let f64b = reconcile(&params(), &PrecisionPolicy::by_name("f64").unwrap()).unwrap();
        assert!(
            (f64b.spmv_value / m.spmv_value - 4.0).abs() < 1e-9,
            "fp16 storage quarters the value bytes"
        );
    }
}
