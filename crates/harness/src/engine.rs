//! The campaign engine: plan the cross-product a [`CampaignSpec`]
//! declares, execute every cell with progress logging, and emit a
//! versioned [`CampaignReport`].
//!
//! Cell production per [`SeriesMode`]:
//!
//! * **Measured** — real SPMD runs over the `HPGMXP_COMM`-selected
//!   transport (thread-ranks by default, socket-rank processes under
//!   `hpgmxp-launch`; each cell records which in its `transport`):
//!   classic solvers via `core::benchmark::{validate, run_phase}`,
//!   policies via `validate_policy_checked` + `run_policy_phase`. A
//!   policy whose solver breaks down yields an `Unrated` cell — the
//!   iteration count where it gave up is carried, a GF/s number is not.
//! * **Modeled** — `machine::simulate` projections at each node count,
//!   per policy through [`SimConfig::policy`].
//! * **Hybrid** — both, reconciled: the engine first *asserts* that the
//!   policy's measured matrix + halo bytes agree exactly with
//!   `Workload::policy_*_bytes` ([`crate::measure::reconcile`]), then
//!   runs the measured cells, and feeds each policy's measured
//!   iteration penalty into its modeled projections — this box grounds
//!   the 9408-node numbers.

use crate::measure::{reconcile, MeasuredTraffic, RECONCILE_RANKS};
use crate::report::{CampaignReport, CellReport, CellStatus, HostMeta, REPORT_SCHEMA};
use crate::spec::{CampaignSpec, SeriesMode, SeriesSolver, SeriesSpec};
use hpgmxp_core::benchmark::{
    run_phase, run_policy_phase, validate, validate_policy_checked, PhaseResult, ValidationMode,
};
use hpgmxp_core::config::BenchmarkParams;
use hpgmxp_core::motifs::Motif;
use hpgmxp_machine::simulate::{simulate, SimConfig};
use hpgmxp_machine::{MachineModel, NetworkModel};
use std::collections::HashMap;

/// The paper's measured 1-node iteration penalty of the classic mixed
/// solver (2305/2382) — the default for modeled `"mxp"` cells with no
/// explicit or measured penalty, matching `SimConfig::paper_mxp`.
pub const PAPER_MXP_PENALTY: f64 = 2305.0 / 2382.0;

/// The scale axis of one planned cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CellScale {
    /// A real run on `ranks` thread-ranks.
    Measured {
        /// Thread-rank count.
        ranks: usize,
    },
    /// A machine-model projection at `nodes` nodes.
    Modeled {
        /// Node count.
        nodes: usize,
    },
}

/// One planned cell: indices into the spec plus the scale point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellPlan {
    /// Index into `spec.series`.
    pub series: usize,
    /// Index into `series.policies`.
    pub policy: usize,
    /// Scale point.
    pub scale: CellScale,
}

/// Plan the full cross-product of a validated spec, measured cells
/// before modeled ones within each (series, policy) so measured
/// penalties can ground the projections.
pub fn plan(spec: &CampaignSpec) -> Result<Vec<CellPlan>, String> {
    spec.validate()?;
    let mut cells = Vec::new();
    for (si, series) in spec.series.iter().enumerate() {
        for pi in 0..series.policies.len() {
            if matches!(series.mode, SeriesMode::Measured | SeriesMode::Hybrid) {
                for &ranks in &series.ranks {
                    cells.push(CellPlan {
                        series: si,
                        policy: pi,
                        scale: CellScale::Measured { ranks },
                    });
                }
            }
            if matches!(series.mode, SeriesMode::Modeled | SeriesMode::Hybrid) {
                for &nodes in &series.nodes {
                    cells.push(CellPlan {
                        series: si,
                        policy: pi,
                        scale: CellScale::Modeled { nodes },
                    });
                }
            }
        }
    }
    Ok(cells)
}

/// Per-(series, policy) execution state threaded from measured cells
/// into modeled ones.
#[derive(Default)]
struct PolicyState {
    /// Byte reconciliation outcome (Hybrid policies only).
    traffic: Option<MeasuredTraffic>,
    reconciled: Option<bool>,
    /// Measured `min(1, n_d/n_ir)` of the latest measured cell.
    measured_penalty: Option<f64>,
    /// A measured cell of this policy failed to converge — later
    /// modeled cells must not be rated on top of a broken solver.
    broke_down: bool,
}

/// Raw per-motif GF/s (the motifs that recorded time), in reporting
/// order — the one rating rule shared by measured and modeled cells.
fn motif_gflops(get: impl Fn(Motif) -> (f64, f64)) -> Vec<(String, f64)> {
    Motif::ALL
        .iter()
        .filter_map(|&m| {
            let (s, f) = get(m);
            (s > 0.0 && f > 0.0).then(|| (m.label().to_string(), f / s / 1e9))
        })
        .collect()
}

/// Run one campaign end to end.
pub fn run_campaign(spec: &CampaignSpec) -> Result<CampaignReport, String> {
    let cells = plan(spec)?;
    let machine = spec.machine_model()?;
    let net = spec.network_model()?;
    let params = spec.params();
    let total = cells.len();
    let t0 = std::time::Instant::now();
    eprintln!(
        "[campaign {}] {} cells planned across {} series",
        spec.name,
        total,
        spec.series.len()
    );

    let mut states: HashMap<(usize, usize), PolicyState> = HashMap::new();
    let mut report = CampaignReport {
        schema: REPORT_SCHEMA,
        campaign: spec.name.clone(),
        description: spec.description.clone(),
        host: HostMeta::capture(),
        cells: Vec::with_capacity(total),
    };

    for (i, cp) in cells.iter().enumerate() {
        let series = &spec.series[cp.series];
        let solver = series.policies[cp.policy].resolve()?;
        eprintln!(
            "[campaign {}] cell {}/{} series `{}` policy `{}` {:?} ({:.1}s elapsed)",
            spec.name,
            i + 1,
            total,
            series.label,
            solver.label(),
            cp.scale,
            t0.elapsed().as_secs_f64()
        );

        // Hybrid policies reconcile bytes once, before any cell runs.
        let key = (cp.series, cp.policy);
        if series.mode == SeriesMode::Hybrid {
            if let SeriesSolver::Policy(p) = &solver {
                let st = states.entry(key).or_default();
                if st.reconciled.is_none() {
                    let m = reconcile(&params, p)?;
                    st.traffic = Some(m);
                    st.reconciled = Some(true);
                    eprintln!(
                        "[campaign {}]   bytes reconciled for `{}` at P={} \
                         (spmv value {:.0} B, wire {:.0} B)",
                        spec.name, p.name, RECONCILE_RANKS, m.spmv_value, m.wire
                    );
                }
            }
        }

        let cell = match cp.scale {
            CellScale::Measured { ranks } => {
                let mut cell = measured_cell(&params, series, &solver, ranks).map_err(|e| {
                    format!("series `{}` policy `{}`: {e}", series.label, solver.label())
                })?;
                let st = states.entry(key).or_default();
                if cell.status == CellStatus::Rated {
                    if let Some(p) = cell.penalty {
                        st.measured_penalty = Some(p);
                    }
                } else {
                    st.broke_down = true;
                }
                cell.reconciled = st.reconciled;
                cell.spmv_value_bytes = st.traffic.map(|t| t.spmv_value);
                cell
            }
            CellScale::Modeled { nodes } => {
                let st = states.entry(key).or_default();
                if st.broke_down {
                    // A projection on top of a solver this box watched
                    // break down would be a made-up number: carry the
                    // cell, unrated, with no GF/s at all.
                    let mut cell = CellReport::new(
                        &series.label,
                        series.mode,
                        solver.label(),
                        nodes * machine.devices_per_node,
                    );
                    cell.nodes = Some(nodes);
                    cell.transport = "model".into();
                    cell.status = CellStatus::Unrated;
                    cell.note = "no projection: measured solver broke down on this host".into();
                    cell.reconciled = st.reconciled;
                    cell.spmv_value_bytes = st.traffic.map(|t| t.spmv_value);
                    report.cells.push(cell);
                    continue;
                }
                let (penalty, provenance) = match (series.penalty, st.measured_penalty) {
                    (Some(p), _) => (p, "spec penalty"),
                    (None, Some(p)) => (p, "penalty from measured validation on this host"),
                    (None, None) => match solver {
                        SeriesSolver::ClassicMixed => (PAPER_MXP_PENALTY, "paper 1-node penalty"),
                        _ => (1.0, "no penalty applied"),
                    },
                };
                let mut cell = modeled_cell(spec, series, &solver, &machine, &net, nodes, penalty);
                cell.note = provenance.to_string();
                cell.reconciled = st.reconciled;
                cell.spmv_value_bytes = st.traffic.map(|t| t.spmv_value);
                cell
            }
        };
        report.cells.push(cell);
    }
    eprintln!(
        "[campaign {}] done: {} cells in {:.1}s",
        spec.name,
        total,
        t0.elapsed().as_secs_f64()
    );
    Ok(report)
}

/// Execute one measured cell.
fn measured_cell(
    params: &BenchmarkParams,
    series: &SeriesSpec,
    solver: &SeriesSolver,
    ranks: usize,
) -> Result<CellReport, String> {
    let mut cell = CellReport::new(&series.label, series.mode, solver.label(), ranks);
    cell.transport = hpgmxp_comm::Transport::from_env().name().to_string();
    // Per-cell metrics delta: only populated when the registry is
    // armed, so untraced campaign reports (the golden, cross-transport
    // compares) stay free of timing-dependent fields.
    let metrics_before = hpgmxp_trace::MetricsSnapshot::capture();
    match solver {
        SeriesSolver::ClassicDouble => {
            let phase = run_phase(params, series.variant, ranks, false);
            fill_measured(&mut cell, &phase, 1.0);
        }
        SeriesSolver::ClassicMixed => {
            let v = validate(params, series.variant, ranks, ValidationMode::Standard);
            let phase = run_phase(params, series.variant, ranks, true);
            cell.nd = Some(v.nd);
            cell.nir = Some(v.nir);
            cell.penalty = Some(v.penalty);
            fill_measured(&mut cell, &phase, v.penalty);
        }
        SeriesSolver::Policy(policy) => {
            let pv = validate_policy_checked(params, series.variant, ranks, policy);
            cell.nd = Some(pv.result.nd);
            cell.nir = Some(pv.result.nir);
            if pv.converged {
                cell.penalty = Some(pv.result.penalty);
                let phase = run_policy_phase(params, series.variant, ranks, policy);
                fill_measured(&mut cell, &phase, pv.result.penalty);
            } else {
                // The honesty path: no GF/s for a broken solver.
                cell.status = CellStatus::Unrated;
                cell.note = format!(
                    "breakdown at relres {:.3e} after {} iterations",
                    pv.ir_final_relres, pv.result.nir
                );
            }
        }
    }
    if hpgmxp_trace::counters_armed() {
        cell.metrics = Some(hpgmxp_trace::MetricsSnapshot::capture().delta_since(&metrics_before));
    }
    Ok(cell)
}

fn fill_measured(cell: &mut CellReport, phase: &PhaseResult, penalty: f64) {
    cell.gflops_per_rank_raw = Some(phase.gflops_raw);
    cell.gflops_per_rank = Some(phase.gflops_raw * penalty);
    cell.bytes_per_iter_rank = Some(phase.bytes_per_iteration());
    cell.overlap_efficiency = phase.overlap_efficiency;
    cell.motif_gflops = motif_gflops(|m| (phase.seconds_of(m), phase.flops_of(m)));
}

/// Execute one modeled cell.
fn modeled_cell(
    spec: &CampaignSpec,
    series: &SeriesSpec,
    solver: &SeriesSolver,
    machine: &MachineModel,
    net: &NetworkModel,
    nodes: usize,
    penalty: f64,
) -> CellReport {
    let local = series.modeled_local.unwrap_or(spec.local);
    let base = SimConfig {
        local,
        mg_levels: spec.mg_levels,
        restart: spec.restart,
        variant: series.variant,
        mixed: true,
        inner_bytes: 4,
        penalty,
        policy: None,
    };
    let cfg = match solver {
        SeriesSolver::ClassicMixed => base,
        SeriesSolver::ClassicDouble => SimConfig { mixed: false, penalty: 1.0, ..base },
        SeriesSolver::Policy(p) => SimConfig { policy: Some(p.clone()), ..base },
    };
    let ranks = nodes * machine.devices_per_node;
    let r = simulate(&cfg, machine, net, ranks);
    let mut cell = CellReport::new(&series.label, series.mode, solver.label(), ranks);
    cell.nodes = Some(nodes);
    cell.transport = "model".into();
    cell.gflops_per_rank = Some(r.gflops_per_rank);
    cell.gflops_per_rank_raw = Some(r.gflops_per_rank_raw);
    cell.total_pflops = Some(r.total_pflops);
    cell.penalty = Some(match solver {
        SeriesSolver::ClassicDouble => 1.0,
        _ => penalty.min(1.0),
    });
    cell.motif_gflops = motif_gflops(|m| (r.per_iter.seconds(m), r.per_iter.flops(m)));
    cell
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{PolicyRef, SPEC_SCHEMA};
    use hpgmxp_core::config::ImplVariant;

    fn modeled_spec(policies: Vec<PolicyRef>, nodes: Vec<usize>) -> CampaignSpec {
        CampaignSpec {
            schema: SPEC_SCHEMA,
            name: "test".into(),
            description: "engine unit test".into(),
            local: (8, 8, 8),
            mg_levels: 2,
            restart: 30,
            iters_per_solve: 8,
            benchmark_solves: 1,
            validation_max_iters: 400,
            machine: "mi250x_gcd".into(),
            network: "frontier_slingshot".into(),
            series: vec![SeriesSpec {
                label: "s".into(),
                mode: SeriesMode::Modeled,
                variant: ImplVariant::Optimized,
                policies,
                ranks: vec![],
                nodes,
                modeled_local: Some((320, 320, 320)),
                penalty: None,
            }],
        }
    }

    #[test]
    fn plan_is_the_declared_cross_product() {
        let mut spec = modeled_spec(
            vec![PolicyRef::by_name("f64"), PolicyRef::by_name("f32")],
            vec![1, 8, 64],
        );
        spec.series[0].mode = SeriesMode::Hybrid;
        spec.series[0].ranks = vec![2];
        let cells = plan(&spec).unwrap();
        // 2 policies × (1 measured + 3 modeled) = 8 cells.
        assert_eq!(cells.len(), 8);
        // Measured before modeled within each policy.
        assert_eq!(cells[0].scale, CellScale::Measured { ranks: 2 });
        assert_eq!(cells[1].scale, CellScale::Modeled { nodes: 1 });
        assert_eq!(cells[4].scale, CellScale::Measured { ranks: 2 });
    }

    #[test]
    fn modeled_campaign_produces_rated_cells_with_projections() {
        let spec = modeled_spec(
            vec![PolicyRef::by_name("mxp"), PolicyRef::by_name("f32s-f64c")],
            vec![1, 512, 9408],
        );
        let report = run_campaign(&spec).unwrap();
        assert_eq!(report.schema, REPORT_SCHEMA);
        assert_eq!(report.cells.len(), 6);
        for c in &report.cells {
            assert_eq!(c.status, CellStatus::Rated);
            assert!(c.gflops_per_rank.unwrap() > 0.0);
            assert!(c.total_pflops.unwrap() > 0.0);
            assert_eq!(c.ranks, c.nodes.unwrap() * 8, "Frontier has 8 GCDs per node");
        }
        // Classic mxp cells default to the paper's measured penalty.
        let mxp = report.find_cell("s", "mxp", Some(512), None).unwrap();
        assert!((mxp.penalty.unwrap() - PAPER_MXP_PENALTY).abs() < 1e-12);
        // Weak scaling: GF/rank non-increasing with node count.
        let sweep = report.series_cells("s");
        let f32s: Vec<&&CellReport> = sweep.iter().filter(|c| c.policy == "f32s-f64c").collect();
        assert!(f32s[0].gflops_per_rank >= f32s[2].gflops_per_rank);
    }

    #[test]
    fn hybrid_projections_of_broken_policies_are_unrated() {
        // A validation cap the stress-fp16 policy cannot meet: the
        // measured cell breaks down, and the modeled cells must not be
        // rated on top of a solver this box watched fail.
        let mut spec = modeled_spec(vec![PolicyRef::by_name("f16")], vec![8]);
        spec.series[0].mode = SeriesMode::Hybrid;
        spec.series[0].ranks = vec![2];
        spec.validation_max_iters = 4;
        let report = run_campaign(&spec).unwrap();
        assert_eq!(report.cells.len(), 2);
        assert_eq!(report.cells[0].status, CellStatus::Unrated, "measured breakdown");
        let modeled = &report.cells[1];
        assert_eq!(modeled.status, CellStatus::Unrated, "projection must not be rated");
        assert_eq!(modeled.gflops_per_rank, None);
        assert_eq!(modeled.total_pflops, None);
        assert!(modeled.note.contains("broke down"), "note: {}", modeled.note);
        assert_eq!(modeled.nodes, Some(8));
    }

    #[test]
    fn modeled_double_ignores_penalty() {
        let mut spec = modeled_spec(vec![PolicyRef::by_name("double")], vec![8]);
        spec.series[0].penalty = Some(0.5);
        let report = run_campaign(&spec).unwrap();
        let c = &report.cells[0];
        assert_eq!(c.penalty, Some(1.0), "double is never penalized");
        assert_eq!(c.gflops_per_rank, c.gflops_per_rank_raw);
    }
}
