//! The campaign harness: a declarative experiment subsystem unifying
//! measured runs, machine-model projections, and per-policy weak
//! scaling.
//!
//! The paper's headline results (figures 4–7, Table 2) are *campaigns*
//! — sweeps over node counts, precision variants, and implementation
//! variants under a rating methodology. This crate owns that
//! orchestration, the way HPL-MxP's driver owns its run/report
//! pipeline, instead of leaving each figure binary to hand-roll it:
//!
//! * [`spec`] — [`CampaignSpec`](spec::CampaignSpec): serde-configured
//!   axes (local dims, thread-rank counts, precision policies by name
//!   or inline, implementation variants, modeled node counts against
//!   named machine/network models) and a
//!   [`SeriesMode`](spec::SeriesMode) per series;
//! * [`engine`] — plans the cross-product, executes with progress
//!   logging ([`engine::run_campaign`]), reconciles measurement
//!   against the byte model in Hybrid mode, and feeds measured
//!   iteration penalties into at-scale projections;
//! * [`measure`] — the exact byte reconciliation (measured kernel
//!   traffic vs `Workload::policy_*_bytes`);
//! * [`report`] — the versioned [`CampaignReport`](report::
//!   CampaignReport): JSON for machines, aligned text for humans, with
//!   non-converged cells carried as explicit `Unrated` (`n/c`) rows
//!   and host metadata recorded alongside the numbers.
//!
//! The figure binaries in `hpgmxp-bench` (`fig4_weak_scaling`,
//! `fig5_speedups`, `ablation_study`) are thin frontends over this
//! crate, and `campaigns/*.json` at the repository root hold the
//! shipped specs (`paper_frontier`, `policy_sweep`, `smoke`); run one
//! with
//! `cargo run --release -p hpgmxp-harness --bin campaign -- <spec>`.

pub mod engine;
pub mod measure;
pub mod report;
pub mod spec;

pub use engine::{plan, run_campaign, CellPlan, CellScale};
pub use report::{CampaignReport, CellReport, CellStatus, HostMeta, REPORT_SCHEMA};
pub use spec::{CampaignSpec, PolicyRef, SeriesMode, SeriesSpec, SPEC_SCHEMA};
