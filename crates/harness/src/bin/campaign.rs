//! The campaign driver: run a declarative experiment spec end to end.
//!
//! ```text
//! cargo run --release -p hpgmxp-harness --bin campaign -- campaigns/policy_sweep.json
//! cargo run --release -p hpgmxp-harness --bin campaign -- campaigns/smoke.json --out smoke.json
//! ```
//!
//! Prints the aligned-text tables to stdout and writes the versioned
//! JSON report (default: `<campaign-name>.campaign.json` in the
//! current directory; `--out PATH` overrides). Exit status is non-zero
//! on spec errors, execution failures, or a Hybrid byte-reconciliation
//! mismatch — CI treats the reconciliation as an assertion.

use hpgmxp_harness::{run_campaign, CampaignSpec};
use std::process::ExitCode;

fn usage() -> String {
    "usage: campaign <spec.json> [--out report.json] [--no-json]".to_string()
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut spec_path: Option<String> = None;
    let mut out_path: Option<String> = None;
    let mut write_json = true;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--out" => {
                out_path = Some(it.next().ok_or_else(usage)?.clone());
            }
            "--no-json" => write_json = false,
            flag if flag.starts_with("--") => {
                return Err(format!("unknown flag {flag}\n{}", usage()))
            }
            path => {
                if spec_path.replace(path.to_string()).is_some() {
                    return Err(usage());
                }
            }
        }
    }
    let spec_path = spec_path.ok_or_else(usage)?;
    let text =
        std::fs::read_to_string(&spec_path).map_err(|e| format!("cannot read {spec_path}: {e}"))?;
    let spec = CampaignSpec::from_json(&text)?;

    let report = run_campaign(&spec)?;
    print!("{}", report.to_text());

    if write_json {
        let out = out_path.unwrap_or_else(|| format!("{}.campaign.json", spec.name));
        std::fs::write(&out, report.to_json()).map_err(|e| format!("cannot write {out}: {e}"))?;
        println!("\nJSON report (schema v{}): {out}", report.schema);
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("campaign: {e}");
            ExitCode::FAILURE
        }
    }
}
