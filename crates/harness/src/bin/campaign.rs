//! The campaign driver: run a declarative experiment spec end to end.
//!
//! ```text
//! cargo run --release -p hpgmxp-harness --bin campaign -- campaigns/policy_sweep.json
//! cargo run --release -p hpgmxp-harness --bin campaign -- campaigns/smoke.json --out smoke.json
//! hpgmxp-launch -n 2 -- target/release/campaign campaigns/smoke.json --out smoke-socket.json
//! cargo run --release -p hpgmxp-harness --bin campaign -- compare a.json b.json
//! ```
//!
//! Prints the aligned-text tables to stdout and writes the versioned
//! JSON report (default: `<campaign-name>.campaign.json` in the
//! current directory; `--out PATH` overrides). Exit status is non-zero
//! on spec errors, execution failures, or a Hybrid byte-reconciliation
//! mismatch — CI treats the reconciliation as an assertion.
//!
//! Under `HPGMXP_COMM=socket` every rank process executes the campaign
//! (the measured cells are SPMD), but only rank 0 prints and writes
//! the report — the others produce identical cells and stay quiet.
//!
//! The `compare` subcommand pins transport- and collective-algorithm
//! independence: it diffs the *deterministic* fields of two reports
//! (solver trajectories, byte counters, statuses — everything except
//! wall-clock-derived rates and the transport/collective stamps
//! themselves) and exits non-zero on any drift, printing each report's
//! `HPGMXP_COMM`/`HPGMXP_COLL` configuration. CI runs it across
//! thread/socket/shmem reports of the same campaign.

use hpgmxp_harness::{run_campaign, CampaignReport, CampaignSpec, CellReport};
use std::process::ExitCode;

fn usage() -> String {
    "usage: campaign <spec.json> [--out report.json] [--no-json]\n       \
     campaign compare <a.json> <b.json>"
        .to_string()
}

/// Is this process a non-zero rank of a multi-process (socket or
/// shmem) job? (Rank 0 — and the thread transport — own the terminal
/// and the report file.)
fn quiet_socket_rank() -> bool {
    hpgmxp_comm::Transport::from_env().is_process_per_rank()
        && std::env::var("HPGMXP_RANK").ok().and_then(|v| v.parse::<usize>().ok()) != Some(0)
}

/// The fields of a cell that must not depend on the transport (or the
/// wall clock): identity, solver trajectory, byte counters, verdicts.
/// Rates (`gflops_*`, `total_pflops`), `overlap_efficiency`,
/// `motif_gflops` values, and the `transport` stamp itself are
/// legitimately different between runs.
fn deterministic_view(c: &CellReport) -> impl PartialEq + std::fmt::Debug {
    (
        (c.series.clone(), c.mode, c.policy.clone(), c.nodes, c.ranks, c.status),
        (c.nd, c.nir, c.penalty.map(f64::to_bits)),
        (
            c.bytes_per_iter_rank.map(f64::to_bits),
            c.spmv_value_bytes.map(f64::to_bits),
            c.reconciled,
        ),
        (c.motif_gflops.iter().map(|(l, _)| l.clone()).collect::<Vec<_>>(), c.note.clone()),
    )
}

fn compare(a_path: &str, b_path: &str) -> Result<(), String> {
    let load = |p: &str| -> Result<CampaignReport, String> {
        let text = std::fs::read_to_string(p).map_err(|e| format!("cannot read {p}: {e}"))?;
        CampaignReport::from_json(&text)
    };
    let a = load(a_path)?;
    let b = load(b_path)?;
    if a.schema != b.schema {
        return Err(format!(
            "schema mismatch: {a_path} has v{}, {b_path} has v{}",
            a.schema, b.schema
        ));
    }
    if a.campaign != b.campaign {
        return Err(format!(
            "campaign mismatch: {a_path} ran `{}`, {b_path} ran `{}`",
            a.campaign, b.campaign
        ));
    }
    if a.cells.len() != b.cells.len() {
        return Err(format!(
            "cell count mismatch: {a_path} has {}, {b_path} has {}",
            a.cells.len(),
            b.cells.len()
        ));
    }
    let mut transports = (Vec::new(), Vec::new());
    for (i, (ca, cb)) in a.cells.iter().zip(b.cells.iter()).enumerate() {
        let (va, vb) = (deterministic_view(ca), deterministic_view(cb));
        if va != vb {
            return Err(format!(
                "cell {i} (series `{}`, policy `{}`) differs in deterministic fields:\n\
                 {a_path}: {va:#?}\n{b_path}: {vb:#?}",
                ca.series, ca.policy
            ));
        }
        if !transports.0.contains(&ca.transport) {
            transports.0.push(ca.transport.clone());
        }
        if !transports.1.contains(&cb.transport) {
            transports.1.push(cb.transport.clone());
        }
    }
    println!(
        "campaign compare: `{}` — {} cells reconcile identically \
         ({} [comm {}, coll {}] vs {} [comm {}, coll {}])",
        a.campaign,
        a.cells.len(),
        transports.0.join("+"),
        a.host.transport,
        a.host.coll_algo,
        transports.1.join("+"),
        b.host.transport,
        b.host.coll_algo,
    );
    Ok(())
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("compare") {
        let [_, a, b] = args.as_slice() else { return Err(usage()) };
        return compare(a, b);
    }
    let mut spec_path: Option<String> = None;
    let mut out_path: Option<String> = None;
    let mut write_json = true;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--out" => {
                out_path = Some(it.next().ok_or_else(usage)?.clone());
            }
            "--no-json" => write_json = false,
            flag if flag.starts_with("--") => {
                return Err(format!("unknown flag {flag}\n{}", usage()))
            }
            path => {
                if spec_path.replace(path.to_string()).is_some() {
                    return Err(usage());
                }
            }
        }
    }
    let spec_path = spec_path.ok_or_else(usage)?;
    let text =
        std::fs::read_to_string(&spec_path).map_err(|e| format!("cannot read {spec_path}: {e}"))?;
    let spec =
        CampaignSpec::from_json(&text).map_err(|e| format!("cannot parse {spec_path}: {e}"))?;

    let report = run_campaign(&spec)?;
    if quiet_socket_rank() {
        // This process was one rank of the SPMD job; rank 0 reports.
        return Ok(());
    }
    print!("{}", report.to_text());

    if write_json {
        let out = out_path.unwrap_or_else(|| format!("{}.campaign.json", spec.name));
        std::fs::write(&out, report.to_json()).map_err(|e| format!("cannot write {out}: {e}"))?;
        println!("\nJSON report (schema v{}): {out}", report.schema);
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("campaign: {e}");
            ExitCode::FAILURE
        }
    }
}
