//! The output side of the campaign harness: a versioned, machine-
//! readable [`CampaignReport`] plus an aligned-text rendering.
//!
//! Every cell carries the benchmark's full rating context — GF/s
//! (penalized and raw), measured bytes per inner iteration per rank,
//! the `n_d`/`n_ir` iteration counts and penalty, measured halo-overlap
//! efficiency, and the byte-model reconciliation verdict — alongside an
//! explicit [`CellStatus`]: a cell whose solver broke down (the
//! standalone-fp16 stress scenario) is carried as `Unrated` with no
//! GF/s number at all, and the text renderer prints `n/c`. Host
//! metadata (core count, thread setting) is recorded at the report
//! level so a reader can tell a 1-core container's numbers from a real
//! workstation's.

use crate::spec::SeriesMode;
use hpgmxp_trace::MetricsSnapshot;
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// Version of the campaign-report JSON layout. Bump on any field
/// change; the golden-file test in the integration suite pins the
/// current layout. v2 added the per-cell `transport` field when the
/// socket backend made the measuring transport a real variable; v3
/// added the host SIMD fields (`simd_features`/`simd_level`/
/// `simd_override`) when the motif kernels grew a runtime-dispatched
/// vector path; v4 added the host `transport` and `coll_algo` fields
/// when the collective engine made the algorithm (`HPGMXP_COLL`) a
/// second measurement variable alongside the transport; v5 added the
/// per-cell `metrics` snapshot (a [`MetricsSnapshot`] delta over the
/// cell's execution), populated only when `HPGMXP_TRACE` arms the
/// metrics registry — untraced campaigns keep emitting `null` there,
/// so cross-transport compares stay byte-stable.
pub const REPORT_SCHEMA: u32 = 5;

/// Whether a cell earned a performance rating.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CellStatus {
    /// The solver converged (or the cell is a pure model projection):
    /// the GF/s numbers are meaningful.
    Rated,
    /// The solver did not converge — no GF/s is reported (`n/c` in the
    /// text table), only the iteration count at which it gave up.
    Unrated,
}

/// Host metadata recorded with every report (the 1-core-box caveat
/// made machine-readable).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HostMeta {
    /// Logical CPU cores visible to this process.
    pub logical_cores: usize,
    /// Thread count the rayon pool resolves to (`RAYON_NUM_THREADS`
    /// or the core count).
    pub rayon_threads: usize,
    /// Operating system (`std::env::consts::OS`).
    pub os: String,
    /// CPU architecture (`std::env::consts::ARCH`).
    pub arch: String,
    /// CPU vector features detected at startup (`"avx2+fma+f16c"` or
    /// `"none"`); numbers measured on mismatched feature sets are not
    /// comparable.
    pub simd_features: String,
    /// Kernel dispatch level the run resolved to (`"avx2"` /
    /// `"scalar"`).
    pub simd_level: String,
    /// `HPGMXP_SIMD` override in effect, if any.
    pub simd_override: Option<String>,
    /// Transport the run's measured cells communicate over
    /// (`HPGMXP_COMM`: `"thread"`, `"socket"`, or `"shmem"`).
    pub transport: String,
    /// Collective algorithm in force (`HPGMXP_COLL`: `"star"` or
    /// `"rd"`). Results are bit-identical either way; rates are not.
    pub coll_algo: String,
}

impl HostMeta {
    /// Capture the current host.
    pub fn capture() -> Self {
        let logical_cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        let rayon_threads = std::env::var("RAYON_NUM_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or(logical_cores);
        HostMeta {
            logical_cores,
            rayon_threads,
            os: std::env::consts::OS.to_string(),
            arch: std::env::consts::ARCH.to_string(),
            simd_features: hpgmxp_sparse::simd::features().summary(),
            simd_level: hpgmxp_sparse::simd::level().name().to_string(),
            simd_override: hpgmxp_sparse::simd::env_override().map(str::to_string),
            transport: hpgmxp_comm::Transport::from_env().name().to_string(),
            coll_algo: hpgmxp_comm::collectives::algo().name().to_string(),
        }
    }
}

/// One cell of a campaign: a (series, policy, scale) point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellReport {
    /// Series label this cell belongs to.
    pub series: String,
    /// The series' mode (a Hybrid series emits both measured and
    /// modeled cells; `nodes` tells them apart).
    pub mode: SeriesMode,
    /// Solver label: a policy name, `"mxp"`, or `"double"`.
    pub policy: String,
    /// Node count of a modeled cell; `None` for measured cells.
    pub nodes: Option<usize>,
    /// World size: modeled `nodes × devices_per_node`, or the measured
    /// rank count.
    pub ranks: usize,
    /// Transport the cell's measurement ran over: `"thread"`,
    /// `"socket"`, or `"shmem"` for measured cells, `"model"` for pure
    /// projections.
    pub transport: String,
    /// Rating status (see [`CellStatus`]).
    pub status: CellStatus,
    /// Penalized GFLOP/s per rank — the benchmark's official metric.
    /// `None` on unrated cells.
    pub gflops_per_rank: Option<f64>,
    /// Raw (unpenalized) GFLOP/s per rank.
    pub gflops_per_rank_raw: Option<f64>,
    /// Penalized machine total, PFLOP/s (modeled cells).
    pub total_pflops: Option<f64>,
    /// Measured data bytes per inner iteration per rank.
    pub bytes_per_iter_rank: Option<f64>,
    /// Double-precision validation iterations `n_d`.
    pub nd: Option<usize>,
    /// Mixed/policy validation iterations `n_ir` (on unrated cells:
    /// where the solver gave up).
    pub nir: Option<usize>,
    /// `min(1, n_d/n_ir)`.
    pub penalty: Option<f64>,
    /// Measured halo-overlap efficiency of the timed phase.
    pub overlap_efficiency: Option<f64>,
    /// Per-motif raw GFLOP/s (modeled or measured), reporting order.
    pub motif_gflops: Vec<(String, f64)>,
    /// Hybrid byte reconciliation verdict: measured SpMV/GS/wire bytes
    /// against `Workload::policy_*_bytes`. `None` where no
    /// reconciliation applies (classic solvers, pure modes). The
    /// engine aborts on drift rather than emitting `Some(false)` —
    /// that value exists for reports built or edited outside the
    /// engine, and the text renderer flags it as `MISMATCH`.
    pub reconciled: Option<bool>,
    /// Measured matrix-value bytes of one fine-level SpMV (the share
    /// the storage axis shrinks; Hybrid cells).
    pub spmv_value_bytes: Option<f64>,
    /// Free-form context (breakdown residuals, penalty provenance).
    pub note: String,
    /// Metrics-registry delta over this cell's execution (wire frame
    /// and byte counters, solver counters, heartbeat-lag histogram).
    /// `None` unless the run armed the registry (`HPGMXP_TRACE`
    /// counters or spans) — the deltas are timing-dependent, so they
    /// stay out of untraced reports that deterministic compares diff.
    pub metrics: Option<MetricsSnapshot>,
}

impl CellReport {
    /// An empty cell skeleton (everything unknown, `Rated`).
    pub fn new(series: &str, mode: SeriesMode, policy: &str, ranks: usize) -> Self {
        CellReport {
            series: series.to_string(),
            mode,
            policy: policy.to_string(),
            nodes: None,
            ranks,
            transport: String::new(),
            status: CellStatus::Rated,
            gflops_per_rank: None,
            gflops_per_rank_raw: None,
            total_pflops: None,
            bytes_per_iter_rank: None,
            nd: None,
            nir: None,
            penalty: None,
            overlap_efficiency: None,
            motif_gflops: Vec::new(),
            reconciled: None,
            spmv_value_bytes: None,
            note: String::new(),
            metrics: None,
        }
    }

    /// Raw GF/s of one motif, when present.
    pub fn motif_gflops_of(&self, label: &str) -> Option<f64> {
        self.motif_gflops.iter().find(|(l, _)| l == label).map(|(_, v)| *v)
    }
}

/// The complete outcome of one campaign run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignReport {
    /// Report layout version (see [`REPORT_SCHEMA`]).
    pub schema: u32,
    /// Campaign name (from the spec).
    pub campaign: String,
    /// Spec description, echoed for self-containment.
    pub description: String,
    /// Host the measured cells ran on.
    pub host: HostMeta,
    /// All cells, in plan order.
    pub cells: Vec<CellReport>,
}

/// Format an optional number, `n/c` when a cell is unrated and `-`
/// when simply absent.
fn fmt_opt(v: Option<f64>, status: CellStatus, prec: usize) -> String {
    match (v, status) {
        (Some(x), _) => format!("{x:.prec$}"),
        (None, CellStatus::Unrated) => "n/c".to_string(),
        (None, CellStatus::Rated) => "-".to_string(),
    }
}

impl CampaignReport {
    /// Cells of one series, in plan order.
    pub fn series_cells(&self, label: &str) -> Vec<&CellReport> {
        self.cells.iter().filter(|c| c.series == label).collect()
    }

    /// Find one cell by series, policy, and scale (`nodes` for modeled
    /// cells, `None` + `ranks` for measured ones).
    pub fn find_cell(
        &self,
        series: &str,
        policy: &str,
        nodes: Option<usize>,
        ranks: Option<usize>,
    ) -> Option<&CellReport> {
        self.cells.iter().find(|c| {
            c.series == series
                && c.policy == policy
                && c.nodes == nodes
                && ranks.is_none_or(|r| c.ranks == r)
        })
    }

    /// Serialize to pretty JSON (the artifact CI uploads).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("campaign report serializes")
    }

    /// Parse a report back from JSON.
    pub fn from_json(text: &str) -> Result<Self, String> {
        serde_json::from_str(text).map_err(|e| format!("bad campaign report: {e}"))
    }

    /// Render the aligned-text tables (one per series).
    pub fn to_text(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "== Campaign `{}` (report schema v{}) ==", self.campaign, self.schema);
        let _ = writeln!(s, "   {}", self.description);
        let _ = writeln!(
            s,
            "   host: {} cores, {} rayon threads, {}/{}, simd {} (features {}{}), \
             comm {}, coll {}",
            self.host.logical_cores,
            self.host.rayon_threads,
            self.host.os,
            self.host.arch,
            self.host.simd_level,
            self.host.simd_features,
            self.host
                .simd_override
                .as_deref()
                .map_or(String::new(), |o| format!(", HPGMXP_SIMD={o}")),
            self.host.transport,
            self.host.coll_algo,
        );
        let mut seen: Vec<&str> = Vec::new();
        for cell in &self.cells {
            if !seen.contains(&cell.series.as_str()) {
                seen.push(&cell.series);
            }
        }
        for label in seen {
            let cells = self.series_cells(label);
            let mode = cells[0].mode;
            let _ = writeln!(s, "\n-- series `{label}` ({mode:?}) --");
            let _ = writeln!(
                s,
                "{:<12} {:>7} {:>7} {:>10} {:>12} {:>11} {:>8} {:>8} {:>6}  status",
                "policy",
                "nodes",
                "ranks",
                "GF/rank",
                "total PF",
                "bytes/it/rk",
                "nd/nir",
                "penalty",
                "ovlp"
            );
            for c in cells {
                let ndnir = match (c.nd, c.nir) {
                    (Some(nd), Some(nir)) => format!("{nd}/{nir}"),
                    (None, Some(nir)) => format!("-/{nir}"),
                    _ => "-".to_string(),
                };
                let status = match (c.status, c.reconciled) {
                    (CellStatus::Unrated, _) => "n/c".to_string(),
                    (CellStatus::Rated, Some(true)) => "ok+recon".to_string(),
                    (CellStatus::Rated, Some(false)) => "MISMATCH".to_string(),
                    (CellStatus::Rated, None) => "ok".to_string(),
                };
                let _ = writeln!(
                    s,
                    "{:<12} {:>7} {:>7} {:>10} {:>12} {:>11} {:>8} {:>8} {:>6}  {}{}",
                    c.policy,
                    c.nodes.map_or("-".to_string(), |n| n.to_string()),
                    c.ranks,
                    fmt_opt(c.gflops_per_rank, c.status, 3),
                    fmt_opt(c.total_pflops, c.status, 3),
                    fmt_opt(c.bytes_per_iter_rank, c.status, 0),
                    ndnir,
                    fmt_opt(c.penalty, c.status, 3),
                    c.overlap_efficiency.map_or("-".to_string(), |e| format!("{:.0}%", e * 100.0)),
                    status,
                    if c.note.is_empty() { String::new() } else { format!("  ({})", c.note) },
                );
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_report() -> CampaignReport {
        let mut rated = CellReport::new("s", SeriesMode::Hybrid, "f32", 2);
        rated.gflops_per_rank = Some(1.5);
        rated.nd = Some(22);
        rated.nir = Some(27);
        rated.penalty = Some(0.815);
        rated.reconciled = Some(true);
        let mut unrated = CellReport::new("s", SeriesMode::Hybrid, "f16", 2);
        unrated.status = CellStatus::Unrated;
        unrated.nir = Some(120);
        unrated.note = "breakdown at relres NaN".into();
        CampaignReport {
            schema: REPORT_SCHEMA,
            campaign: "demo".into(),
            description: "demo".into(),
            host: HostMeta {
                logical_cores: 1,
                rayon_threads: 1,
                os: "linux".into(),
                arch: "x86_64".into(),
                simd_features: "avx2+fma+f16c".into(),
                simd_level: "avx2".into(),
                simd_override: None,
                transport: "thread".into(),
                coll_algo: "rd".into(),
            },
            cells: vec![rated, unrated],
        }
    }

    #[test]
    fn report_roundtrips_through_json() {
        let r = demo_report();
        let back = CampaignReport::from_json(&r.to_json()).unwrap();
        assert_eq!(r, back);
    }

    #[test]
    fn unrated_cells_render_nc_not_numbers() {
        let text = demo_report().to_text();
        assert!(text.contains("n/c"), "unrated cells must print n/c:\n{text}");
        assert!(text.contains("ok+recon"), "reconciled cells are marked:\n{text}");
        assert!(text.contains("breakdown at relres NaN"));
        // The unrated row must not smuggle a GF/s figure.
        let row = text.lines().find(|l| l.starts_with("f16")).unwrap();
        assert!(!row.contains("1.5"), "unrated row shows a rating: {row}");
    }

    #[test]
    fn find_cell_keys_on_policy_and_scale() {
        let r = demo_report();
        assert!(r.find_cell("s", "f32", None, Some(2)).is_some());
        assert!(r.find_cell("s", "f32", Some(8), None).is_none());
        assert_eq!(r.series_cells("s").len(), 2);
    }

    #[test]
    fn host_meta_captures_something_sane() {
        let h = HostMeta::capture();
        assert!(h.logical_cores >= 1);
        assert!(h.rayon_threads >= 1);
        assert!(!h.os.is_empty());
        assert!(!h.simd_features.is_empty());
        assert!(h.simd_level == "avx2" || h.simd_level == "scalar");
        assert!(["thread", "socket", "shmem"].contains(&h.transport.as_str()));
        assert!(h.coll_algo == "star" || h.coll_algo == "rd");
    }
}
