//! CLI contract tests for the `campaign` binary: a bad spec path or an
//! unparseable spec must produce a friendly one-line diagnostic naming
//! the file and the underlying cause, plus a non-zero exit — never a
//! panic or a bare parser error with no context.

use std::process::{Command, Output};

const CAMPAIGN: &str = env!("CARGO_BIN_EXE_campaign");

fn campaign(args: &[&str]) -> Output {
    Command::new(CAMPAIGN).args(args).output().expect("run campaign")
}

#[test]
fn missing_spec_file_names_the_path_and_cause() {
    let out = campaign(&["/no/such/dir/spec.json"]);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(!out.status.success());
    assert!(stderr.contains("campaign:"), "{stderr}");
    assert!(stderr.contains("cannot read /no/such/dir/spec.json"), "{stderr}");
    // The OS-level cause rides along (e.g. "No such file or directory").
    assert!(stderr.contains("o such file"), "{stderr}");
}

#[test]
fn unparseable_spec_names_the_path_and_parse_error() {
    let dir = std::env::temp_dir().join(format!("campaign-cli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("broken.json");
    std::fs::write(&path, "{ this is not json").unwrap();
    let out = campaign(&[path.to_str().unwrap()]);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(!out.status.success());
    assert!(
        stderr.contains(&format!("cannot parse {}", path.display())),
        "must name the spec file: {stderr}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn no_arguments_is_a_usage_error() {
    let out = campaign(&[]);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(!out.status.success());
    assert!(stderr.to_lowercase().contains("usage"), "{stderr}");
}
