//! Distributed orthogonalization of Krylov basis vectors.
//!
//! The benchmark prescribes CGS2 — classical Gram–Schmidt with full
//! reorthogonalization (Algorithm 3, lines 20–27). Classical GS batches
//! all k inner products of an iteration into one GEMV-T and therefore
//! one all-reduce, which is why it scales better than modified GS (one
//! all-reduce per basis vector) — the effect §4.1 discusses. The price
//! is roundoff-driven loss of orthogonality, which the second pass
//! repairs (Giraud et al., the paper's reference 19).
//!
//! Local arithmetic runs in the working precision `S`; reductions are
//! always `f64`.

use crate::flops;
use crate::motifs::{Motif, MotifStats};
use hpgmxp_comm::{Comm, CommResult, ReduceOp};
use hpgmxp_sparse::blas::{self, Basis};
use hpgmxp_sparse::Scalar;
use std::time::Instant;

/// Result of orthogonalizing one new basis vector.
#[derive(Debug, Clone)]
pub struct OrthoResult {
    /// Hessenberg column `h_{0..k, k}` (combined over both CGS2
    /// passes), in `f64` for the Givens QR.
    pub h: Vec<f64>,
    /// The new vector's norm after projection, `h_{k+1,k}`.
    pub beta: f64,
    /// Whether the norm vanished (happy breakdown / exact solve).
    pub breakdown: bool,
}

/// CGS2: orthonormalize basis column `k` against columns `0..k`
/// in place and return the Hessenberg coefficients.
pub fn cgs2<S: Scalar, C: Comm>(
    comm: &C,
    stats: &mut MotifStats,
    q: &mut Basis<S>,
    k: usize,
) -> OrthoResult {
    cgs2_checked(comm, stats, q, k).unwrap_or_else(|e| panic!("{e}"))
}

/// [`cgs2`] that surfaces transport faults as a typed error.
pub fn cgs2_checked<S: Scalar, C: Comm>(
    comm: &C,
    stats: &mut MotifStats,
    q: &mut Basis<S>,
    k: usize,
) -> CommResult<OrthoResult> {
    let t0 = Instant::now();
    let n = q.n();
    let mut h = vec![0.0f64; k];

    // Two identical projection passes (the "2" in CGS2).
    for _pass in 0..2 {
        let local = q.project_local(k);
        let mut hf: Vec<f64> = local.iter().map(|v| v.to_f64()).collect();
        comm.allreduce_checked(&mut hf, ReduceOp::Sum)?;
        let hs: Vec<S> = hf.iter().map(|&v| S::from_f64(v)).collect();
        q.subtract(k, &hs);
        for (acc, v) in h.iter_mut().zip(hf.iter()) {
            *acc += v;
        }
    }

    // Normalize (deterministic blocked parallel reduction).
    let local_sq = blas::norm2_sq_par(q.col(k)).to_f64();
    let beta = comm.allreduce_scalar_checked(local_sq, ReduceOp::Sum)?.max(0.0).sqrt();
    let breakdown = beta <= f64::EPSILON;
    if !breakdown {
        blas::scal(S::from_f64(1.0 / beta), q.col_mut(k));
    }

    stats.record(Motif::Ortho, t0.elapsed().as_secs_f64(), flops::cgs2_step(n, k));
    Ok(OrthoResult { h, beta, breakdown })
}

/// Modified Gram–Schmidt (single pass, one all-reduce per column) —
/// the classical alternative, provided for the orthogonality-quality
/// and communication-cost comparisons.
pub fn mgs<S: Scalar, C: Comm>(
    comm: &C,
    stats: &mut MotifStats,
    q: &mut Basis<S>,
    k: usize,
) -> OrthoResult {
    mgs_checked(comm, stats, q, k).unwrap_or_else(|e| panic!("{e}"))
}

/// [`mgs`] that surfaces transport faults as a typed error.
pub fn mgs_checked<S: Scalar, C: Comm>(
    comm: &C,
    stats: &mut MotifStats,
    q: &mut Basis<S>,
    k: usize,
) -> CommResult<OrthoResult> {
    let t0 = Instant::now();
    let n = q.n();
    let mut h = vec![0.0f64; k];
    for (j, hjs) in h.iter_mut().enumerate() {
        let local = blas::dot_par(q.col(j), q.col(k)).to_f64();
        let hj = comm.allreduce_scalar_checked(local, ReduceOp::Sum)?;
        *hjs = hj;
        q.axpy_cols(j, k, S::from_f64(hj));
    }
    let local_sq = blas::norm2_sq_par(q.col(k)).to_f64();
    let beta = comm.allreduce_scalar_checked(local_sq, ReduceOp::Sum)?.max(0.0).sqrt();
    let breakdown = beta <= f64::EPSILON;
    if !breakdown {
        blas::scal(S::from_f64(1.0 / beta), q.col_mut(k));
    }
    stats.record(Motif::Ortho, t0.elapsed().as_secs_f64(), flops::cgs2_step(n, k) / 2.0);
    Ok(OrthoResult { h, beta, breakdown })
}

/// Measure the worst pairwise loss of orthogonality `max |qᵢ·qⱼ|`
/// over the first `k` columns (diagnostic used by tests and the
/// orthogonality study example).
pub fn orthogonality_defect<S: Scalar, C: Comm>(comm: &C, q: &Basis<S>, k: usize) -> f64 {
    let mut worst = 0.0f64;
    for i in 0..k {
        for j in 0..i {
            let local = blas::dot(q.col(i), q.col(j)).to_f64();
            let v = comm.allreduce_scalar(local, ReduceOp::Sum).abs();
            worst = worst.max(v);
        }
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpgmxp_comm::{run_spmd, SelfComm};

    fn fill_col(q: &mut Basis<f64>, k: usize, f: impl Fn(usize) -> f64) {
        for (i, v) in q.col_mut(k).iter_mut().enumerate() {
            *v = f(i);
        }
    }

    #[test]
    fn cgs2_produces_orthonormal_basis() {
        let comm = SelfComm;
        let mut stats = MotifStats::new();
        let n = 50;
        let mut q: Basis<f64> = Basis::new(n, 6);
        // First vector: normalized by hand.
        fill_col(&mut q, 0, |i| ((i + 1) as f64).sin());
        let nrm = blas::norm2_sq(q.col(0)).sqrt();
        blas::scal(1.0 / nrm, q.col_mut(0));
        // Add five more correlated vectors.
        for k in 1..6 {
            fill_col(&mut q, k, |i| ((i * k + 1) as f64).cos() + 0.9 * ((i + 1) as f64).sin());
            let r = cgs2(&comm, &mut stats, &mut q, k);
            assert!(!r.breakdown);
            assert_eq!(r.h.len(), k);
        }
        assert!(orthogonality_defect(&comm, &q, 6) < 1e-13);
        assert!(stats.flops(Motif::Ortho) > 0.0);
    }

    #[test]
    fn cgs2_recovers_exact_coefficients() {
        // col1 = 2*col0 + orthogonal part: h must recover the 2.0.
        let comm = SelfComm;
        let mut stats = MotifStats::new();
        let mut q: Basis<f64> = Basis::new(4, 2);
        q.col_mut(0).copy_from_slice(&[1.0, 0.0, 0.0, 0.0]);
        q.col_mut(1).copy_from_slice(&[2.0, 0.0, 3.0, 0.0]);
        let r = cgs2(&comm, &mut stats, &mut q, 1);
        assert!((r.h[0] - 2.0).abs() < 1e-14);
        assert!((r.beta - 3.0).abs() < 1e-14);
        assert_eq!(q.col(1), &[0.0, 0.0, 1.0, 0.0]);
    }

    #[test]
    fn breakdown_detected_for_dependent_vector() {
        let comm = SelfComm;
        let mut stats = MotifStats::new();
        let mut q: Basis<f64> = Basis::new(3, 2);
        q.col_mut(0).copy_from_slice(&[1.0, 0.0, 0.0]);
        q.col_mut(1).copy_from_slice(&[5.0, 0.0, 0.0]); // linearly dependent
        let r = cgs2(&comm, &mut stats, &mut q, 1);
        assert!(r.breakdown);
        assert!(r.beta <= f64::EPSILON);
    }

    #[test]
    fn mgs_matches_cgs2_coefficients_in_exact_arithmetic() {
        let comm = SelfComm;
        let mut s1 = MotifStats::new();
        let mut s2 = MotifStats::new();
        let n = 20;
        let make = || {
            let mut q: Basis<f64> = Basis::new(n, 3);
            fill_col(&mut q, 0, |i| if i == 0 { 1.0 } else { 0.0 });
            fill_col(&mut q, 1, |i| ((i + 2) as f64).ln());
            q
        };
        let mut qa = make();
        let ra = cgs2(&comm, &mut s1, &mut qa, 1);
        let mut qb = make();
        let rb = mgs(&comm, &mut s2, &mut qb, 1);
        assert!((ra.h[0] - rb.h[0]).abs() < 1e-12);
        assert!((ra.beta - rb.beta).abs() < 1e-12);
    }

    #[test]
    fn distributed_cgs2_equals_serial() {
        // 2 ranks each owning half of the vectors: coefficients must
        // equal the single-rank result on the concatenation.
        let n_half = 10;
        let results = run_spmd(2, move |c| {
            let mut stats = MotifStats::new();
            let mut q: Basis<f64> = Basis::new(n_half, 2);
            let off = c.rank() * n_half;
            for (i, v) in q.col_mut(0).iter_mut().enumerate() {
                *v = ((off + i) as f64 + 1.0).sin();
            }
            let nrm_sq = blas::norm2_sq(q.col(0));
            let nrm = c.allreduce_scalar(nrm_sq, ReduceOp::Sum).sqrt();
            blas::scal(1.0 / nrm, q.col_mut(0));
            for (i, v) in q.col_mut(1).iter_mut().enumerate() {
                *v = ((off + i) as f64).cos();
            }
            let r = cgs2(&c, &mut stats, &mut q, 1);
            (r.h[0], r.beta)
        });

        // Serial reference on the concatenated vector.
        let comm = SelfComm;
        let mut stats = MotifStats::new();
        let mut q: Basis<f64> = Basis::new(2 * n_half, 2);
        for (i, v) in q.col_mut(0).iter_mut().enumerate() {
            *v = (i as f64 + 1.0).sin();
        }
        let nrm = blas::norm2_sq(q.col(0)).sqrt();
        blas::scal(1.0 / nrm, q.col_mut(0));
        for (i, v) in q.col_mut(1).iter_mut().enumerate() {
            *v = (i as f64).cos();
        }
        let r = cgs2(&comm, &mut stats, &mut q, 1);

        for (h, beta) in results {
            assert!((h - r.h[0]).abs() < 1e-12);
            assert!((beta - r.beta).abs() < 1e-12);
        }
    }

    #[test]
    fn f32_cgs2_orthogonalizes_to_f32_accuracy() {
        let comm = SelfComm;
        let mut stats = MotifStats::new();
        let n = 40;
        let mut q: Basis<f32> = Basis::new(n, 4);
        for (i, v) in q.col_mut(0).iter_mut().enumerate() {
            *v = if i == 0 { 1.0 } else { 0.0 };
        }
        for k in 1..4 {
            for (i, v) in q.col_mut(k).iter_mut().enumerate() {
                *v = ((i * k) as f32 * 0.37).sin() + 0.5;
            }
            let r = cgs2(&comm, &mut stats, &mut q, k);
            assert!(!r.breakdown);
        }
        assert!(orthogonality_defect(&comm, &q, 4) < 1e-5);
    }
}
