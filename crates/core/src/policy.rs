//! The precision-policy engine: three independently chosen precision
//! axes, selected at runtime.
//!
//! The paper's thesis is that HPG-MxP scales the memory wall by
//! shrinking the *bytes moved*; its §5 future work (and HPL-MxP's
//! design) treat precision as a tunable algorithm parameter rather
//! than a type. This module decouples the three axes the rest of the
//! stack had fused into one generic parameter:
//!
//! * **storage** — the precision of the matrix values, *per multigrid
//!   level* (the dominant traffic: `nnz × bytes` per sweep). The split
//!   kernels in `hpgmxp-sparse` load stored values and widen on the
//!   fly, so fp32- or fp16-stored operators run under a wider compute
//!   precision without a separate matrix copy per precision.
//! * **compute** — the accumulate precision of the inner solve's
//!   vectors and arithmetic (SpMV/GS accumulators, BLAS, CGS2). The
//!   GMRES-IR outer residual and solution update stay in `f64`
//!   regardless — that invariant is what lets every policy reach the
//!   benchmark's 1e-9 tolerance.
//! * **wire** — the ghost format halo exchanges put on the network,
//!   rounded on pack and widened on unpack (`hpgmxp-comm`'s
//!   `begin_wire`), independent of both other axes.
//!
//! A [`PrecisionPolicy`] is plain serde-configurable data; the
//! enum-dispatch layer in [`crate::ops`] maps it back onto the
//! monomorphized kernels, so `ablation_study` and the benchmark phases
//! can sweep policies in one process without compiling every
//! combination into every call site.

use hpgmxp_sparse::PrecKind;
use serde::{Deserialize, Serialize};

/// Deepest multigrid hierarchy a policy context tracks (the benchmark
/// fixes 4 levels; 8 leaves slack for experiments).
pub const MAX_LEVELS: usize = 8;

/// A runtime-selected precision scenario.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PrecisionPolicy {
    /// Short name used in reports (e.g. `"f32s-f64c"`).
    pub name: String,
    /// Matrix-value storage precision per multigrid level, finest
    /// first. Shorter than the hierarchy = the last entry repeats on
    /// the remaining (coarser) levels, so `[F32]` means "fp32
    /// everywhere" and `[F64, F32]` means "f64 fine grid, fp32 below".
    pub storage: Vec<PrecKind>,
    /// Compute/accumulate precision of the inner solve.
    pub compute: PrecKind,
    /// Wire format of halo ghosts during the inner solve.
    pub wire: PrecKind,
}

impl PrecisionPolicy {
    /// A uniform policy: one storage precision on every level, wire at
    /// the compute precision.
    pub fn uniform(name: &str, storage: PrecKind, compute: PrecKind) -> Self {
        PrecisionPolicy { name: name.to_string(), storage: vec![storage], compute, wire: compute }
    }

    /// Storage kind of multigrid level `depth` (last entry repeats).
    pub fn storage_at(&self, depth: usize) -> PrecKind {
        *self
            .storage
            .get(depth)
            .or_else(|| self.storage.last())
            .expect("policy storage list must be non-empty")
    }

    /// The policies this repository ships, spanning the paper's
    /// scenarios and its §5 future work:
    ///
    /// 1. `f64` — everything double (the "double" reference phase).
    /// 2. `f32s-f64c` — fp32-*stored* matrices under f64 compute:
    ///    halves the dominant matrix-value traffic while every
    ///    accumulation keeps double rounding (Carson-style balanced
    ///    inexactness).
    /// 3. `f32` — the benchmark's mixed solver (storage = compute =
    ///    wire = fp32 in the inner solve).
    /// 4. `f16s-f32c` — fp16-stored matrices under f32 compute: the
    ///    paper's half-precision scenario without the standalone-fp16
    ///    breakdown (values quarter-width, arithmetic still f32).
    /// 5. `f32-w16` — fp32 inner solve shipping fp16 ghosts: the wire
    ///    axis alone (quarter halo volume).
    /// 6. `descent` — per-level storage descent `[f64, f32, f16, f16]`
    ///    under f32 compute: accuracy where the residual lives,
    ///    aggressive compression on the smoothing-only coarse levels.
    ///
    /// Every shipped policy reaches the benchmark's 1e-9 tolerance
    /// (tested); the standalone-fp16 stress configuration lives in
    /// [`PrecisionPolicy::stress_f16`] because it can break down — the
    /// paper's §5 point, and the reason the fp16 *storage* policy
    /// above pairs half-width values with f32 accumulation instead.
    pub fn shipped() -> Vec<PrecisionPolicy> {
        use PrecKind::{F16, F32, F64};
        vec![
            PrecisionPolicy::uniform("f64", F64, F64),
            PrecisionPolicy {
                name: "f32s-f64c".into(),
                storage: vec![F32],
                compute: F64,
                wire: F64,
            },
            PrecisionPolicy::uniform("f32", F32, F32),
            PrecisionPolicy {
                name: "f16s-f32c".into(),
                storage: vec![F16],
                compute: F32,
                wire: F32,
            },
            PrecisionPolicy { name: "f32-w16".into(), storage: vec![F32], compute: F32, wire: F16 },
            PrecisionPolicy {
                name: "descent".into(),
                storage: vec![F64, F32, F16, F16],
                compute: F32,
                wire: F32,
            },
        ]
    }

    /// The standalone-fp16 stress configuration: storage, compute, and
    /// wire all at half precision in the inner solve. This is the
    /// scenario whose breakdown the paper's §5 warns about — fp16
    /// accumulators can underflow/overflow mid-cycle, in which case
    /// the solver honestly reports non-convergence (NaN residuals are
    /// never masked as success). Kept out of [`PrecisionPolicy::
    /// shipped`] so "every shipped policy reaches 1e-9" stays a
    /// testable invariant; sized-down problems do converge under it.
    pub fn stress_f16() -> PrecisionPolicy {
        PrecisionPolicy::uniform("f16", PrecKind::F16, PrecKind::F16)
    }

    /// Look up a policy by name among the shipped set plus the
    /// standalone-fp16 stress configuration.
    pub fn by_name(name: &str) -> Option<PrecisionPolicy> {
        Self::shipped()
            .into_iter()
            .chain(std::iter::once(Self::stress_f16()))
            .find(|p| p.name == name)
    }

    /// Every distinct storage kind this policy materializes.
    pub fn storage_kinds(&self) -> Vec<PrecKind> {
        let mut kinds = self.storage.clone();
        kinds.sort_unstable();
        kinds.dedup();
        kinds
    }

    /// The compact per-kernel view the distributed kernels dispatch on.
    pub fn ctx(&self) -> PrecCtx {
        let mut storage = [None; MAX_LEVELS];
        for (d, slot) in storage.iter_mut().enumerate() {
            *slot = Some(self.storage_at(d));
        }
        PrecCtx { storage, wire: Some(self.wire) }
    }
}

/// The copyable, per-call view of a policy that rides inside
/// [`crate::ops::OpCtx`]: which storage kind each level's kernels load
/// and which wire format halo ghosts travel in. `None` entries mean
/// **native** — follow the compute scalar `S`, which reproduces the
/// pre-policy behavior bit for bit and is the default everywhere a
/// policy is not explicitly requested (including the f64 outer
/// residual of GMRES-IR).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrecCtx {
    /// Storage kind per level depth (`None` = native).
    pub storage: [Option<PrecKind>; MAX_LEVELS],
    /// Wire kind of halo ghosts (`None` = native).
    pub wire: Option<PrecKind>,
}

impl Default for PrecCtx {
    fn default() -> Self {
        Self::native()
    }
}

impl PrecCtx {
    /// The native context: storage and wire follow the compute scalar.
    pub fn native() -> Self {
        PrecCtx { storage: [None; MAX_LEVELS], wire: None }
    }

    /// Storage kind for a level at `depth` under compute kind
    /// `native`. Depths beyond [`MAX_LEVELS`] clamp to the last slot,
    /// matching `PrecisionPolicy::storage_at`'s repeat-the-last-entry
    /// semantics on arbitrarily deep hierarchies.
    #[inline]
    pub fn storage_kind(&self, depth: usize, native: PrecKind) -> PrecKind {
        self.storage[depth.min(MAX_LEVELS - 1)].unwrap_or(native)
    }

    /// Wire width in bytes under compute kind `native`.
    #[inline]
    pub fn wire_bytes(&self, native: PrecKind) -> usize {
        self.wire.unwrap_or(native).bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpgmxp_sparse::PrecKind::{F16, F32, F64};
    use hpgmxp_sparse::Scalar;

    #[test]
    fn storage_list_repeats_last_entry() {
        let p = PrecisionPolicy {
            name: "descent".into(),
            storage: vec![F64, F32],
            compute: F32,
            wire: F32,
        };
        assert_eq!(p.storage_at(0), F64);
        assert_eq!(p.storage_at(1), F32);
        assert_eq!(p.storage_at(3), F32, "last entry repeats on coarser levels");
        assert_eq!(p.storage_kinds(), vec![F32, F64]);
    }

    #[test]
    fn shipped_policies_are_distinct_and_cover_the_axes() {
        let all = PrecisionPolicy::shipped();
        assert!(all.len() >= 6, "the ablation sweep needs at least 6 policies");
        let mut names: Vec<&str> = all.iter().map(|p| p.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), all.len(), "names must be unique");
        // The three axes each vary somewhere in the shipped set.
        assert!(all.iter().any(|p| p.storage_at(0) != p.compute), "split storage");
        assert!(all.iter().any(|p| p.wire != p.compute), "split wire");
        assert!(all.iter().any(|p| p.storage.len() > 1), "per-level descent");
        assert!(PrecisionPolicy::by_name("f32s-f64c").is_some());
        assert!(PrecisionPolicy::by_name("nope").is_none());
    }

    #[test]
    fn ctx_resolves_depth_and_wire() {
        let p = PrecisionPolicy {
            name: "x".into(),
            storage: vec![F64, F32, F16],
            compute: F32,
            wire: F16,
        };
        let ctx = p.ctx();
        assert_eq!(ctx.storage_kind(0, F32), F64);
        assert_eq!(ctx.storage_kind(2, F32), F16);
        assert_eq!(ctx.storage_kind(7, F32), F16, "deep levels repeat");
        assert_eq!(ctx.storage_kind(12, F32), F16, "depths beyond MAX_LEVELS clamp, not panic");
        assert_eq!(ctx.wire_bytes(F32), 2);

        let native = PrecCtx::native();
        assert_eq!(native.storage_kind(0, F64), F64);
        assert_eq!(native.storage_kind(3, F16), F16);
        assert_eq!(native.wire_bytes(F64), 8);
    }

    #[test]
    fn serde_roundtrip() {
        let p = PrecisionPolicy {
            name: "descent".into(),
            storage: vec![F64, F32, F16, F16],
            compute: F32,
            wire: F16,
        };
        let s = serde_json::to_string(&p).unwrap();
        let q: PrecisionPolicy = serde_json::from_str(&s).unwrap();
        assert_eq!(p, q);
    }

    #[test]
    fn native_kind_constants_line_up() {
        assert_eq!(<f64 as Scalar>::KIND, F64);
        assert_eq!(<f32 as Scalar>::KIND, F32);
        assert_eq!(<hpgmxp_sparse::Half as Scalar>::KIND, F16);
        assert_eq!(F64.bytes(), 8);
        assert_eq!(F32.bytes(), 4);
        assert_eq!(F16.bytes(), 2);
        assert_eq!(PrecKind::parse("fp32"), Some(F32));
    }
}
