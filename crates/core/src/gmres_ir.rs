//! Mixed-precision GMRES-IR — Algorithm 3 of the paper.
//!
//! Iterative refinement wrapped around GMRES: the restart cycle (the
//! blue region of Algorithm 3 — preconditioner, SpMV, Krylov basis,
//! CGS2) runs entirely in single precision, while the outer residual
//! `r = b − A x` (line 7) and the solution update (line 47) are kept in
//! double. The double-precision residual restores the information the
//! low-precision inner solve cannot represent, which is what lets the
//! mixed solver reach the same 10⁻⁹ relative residual as the double
//! solver — at roughly half the memory traffic per inner iteration.

use crate::checkpoint::{self, CheckpointSpec};
use crate::gmres::{gmres_cycle, CycleWorkspace, GmresOptions, SolveStats};
use crate::motifs::{Motif, MotifStats};
use crate::ops::{axpy_lo_mixed_op, dist_norm2_checked, dist_spmv_checked, waxpby_op, OpCtx};
use crate::policy::{PrecCtx, PrecisionPolicy};
use crate::problem::LocalProblem;
use hpgmxp_comm::{Comm, CommResult, Stream, Timeline};
use hpgmxp_sparse::blas::scale_f64_into_lo;
use hpgmxp_sparse::{Half, PrecKind, Scalar};
use std::time::Instant;

/// Solve `A x = b` with mixed-precision GMRES-IR: the benchmark's
/// "mxp" solver with its inner restart cycles in `f32`. Starts from a
/// zero initial guess.
pub fn gmres_ir_solve<C: Comm>(
    comm: &C,
    prob: &LocalProblem,
    opts: &GmresOptions,
    timeline: &Timeline,
) -> (Vec<f64>, SolveStats) {
    gmres_ir_solve_in::<f32, C>(comm, prob, opts, timeline)
}

/// GMRES-IR with the inner solve at emulated IEEE fp16 — the paper's
/// §5 future-work configuration ("if one uses half precision ... in
/// the blue region in algorithm 3, one can expect an even higher
/// speedup"). Iterative refinement still recovers f64-level accuracy;
/// the iteration penalty is larger (see `half_precision_future`
/// example).
pub fn gmres_ir_solve_fp16<C: Comm>(
    comm: &C,
    prob: &LocalProblem,
    opts: &GmresOptions,
    timeline: &Timeline,
) -> (Vec<f64>, SolveStats) {
    gmres_ir_solve_in::<Half, C>(comm, prob, opts, timeline)
}

/// GMRES-IR under a runtime [`PrecisionPolicy`]: the inner solve runs
/// at the policy's compute precision, loading matrices stored at the
/// policy's per-level storage precision (split kernels widen on load)
/// and shipping halo ghosts in the policy's wire format. The outer
/// residual and solution update stay `f64` with natively-stored
/// matrices, which is what recovers 1e-9 under every policy.
pub fn gmres_ir_solve_policy<C: Comm>(
    comm: &C,
    prob: &LocalProblem,
    policy: &PrecisionPolicy,
    opts: &GmresOptions,
    timeline: &Timeline,
) -> (Vec<f64>, SolveStats) {
    let prec = policy.ctx();
    match policy.compute {
        PrecKind::F64 => gmres_ir_solve_prec::<f64, C>(comm, prob, opts, timeline, prec),
        PrecKind::F32 => gmres_ir_solve_prec::<f32, C>(comm, prob, opts, timeline, prec),
        PrecKind::F16 => gmres_ir_solve_prec::<Half, C>(comm, prob, opts, timeline, prec),
    }
}

/// Mixed-precision GMRES-IR generic over the inner (low) precision
/// `SLo`: the blue region of Algorithm 3 runs entirely in `SLo`, the
/// outer residual and solution updates in `f64`.
pub fn gmres_ir_solve_in<SLo: Scalar, C: Comm>(
    comm: &C,
    prob: &LocalProblem,
    opts: &GmresOptions,
    timeline: &Timeline,
) -> (Vec<f64>, SolveStats) {
    gmres_ir_solve_prec::<SLo, C>(comm, prob, opts, timeline, PrecCtx::native())
}

/// [`gmres_ir_solve_in`] with an explicit precision context for the
/// *inner* solve (storage kind per level + ghost wire format). The
/// outer residual loop always runs with the native f64 mapping.
pub fn gmres_ir_solve_prec<SLo: Scalar, C: Comm>(
    comm: &C,
    prob: &LocalProblem,
    opts: &GmresOptions,
    timeline: &Timeline,
    inner_prec: PrecCtx,
) -> (Vec<f64>, SolveStats) {
    gmres_ir_solve_prec_checked::<SLo, C>(comm, prob, opts, timeline, inner_prec, None)
        .unwrap_or_else(|e| panic!("{e}"))
}

/// Fault-tolerant mixed GMRES-IR (f32 inner): transport faults surface
/// as typed [`CommResult`] errors instead of panics, and an optional
/// [`CheckpointSpec`] enables write-ahead checkpointing of the outer
/// iteration plus restore-on-start. A restored run replays the
/// remaining residual history bit-identically.
pub fn gmres_ir_solve_ckpt<C: Comm>(
    comm: &C,
    prob: &LocalProblem,
    opts: &GmresOptions,
    timeline: &Timeline,
    ckpt: Option<&CheckpointSpec>,
) -> CommResult<(Vec<f64>, SolveStats)> {
    gmres_ir_solve_prec_checked::<f32, C>(comm, prob, opts, timeline, PrecCtx::native(), ckpt)
}

/// The full solver: [`gmres_ir_solve_prec`] with fault propagation and
/// optional checkpoint/restart. Every public entry point funnels here.
pub fn gmres_ir_solve_prec_checked<SLo: Scalar, C: Comm>(
    comm: &C,
    prob: &LocalProblem,
    opts: &GmresOptions,
    timeline: &Timeline,
    inner_prec: PrecCtx,
    ckpt: Option<&CheckpointSpec>,
) -> CommResult<(Vec<f64>, SolveStats)> {
    // Snapshot the transport's collective counters so the solve's own
    // traffic (allreduce rounds, per-rank receive counts) lands in the
    // timeline as a delta, not a process-lifetime total.
    let coll_at_start = comm.coll_stats();

    // Outer residual: always f64 with natively-stored (f64) matrices.
    let ctx = OpCtx::new(comm, opts.variant, timeline);
    let ctx_inner = OpCtx::with_prec(comm, opts.variant, timeline, inner_prec);
    let mut stats = MotifStats::new();
    let levels = &prob.levels[..];
    let n = levels[0].n_local();

    // Outer state in double.
    let mut x = vec![0.0f64; levels[0].vec_len()];
    let mut ax = vec![0.0f64; n];
    let mut r = vec![0.0f64; n];
    // Inner state in the low precision.
    let mut r_unit_lo = vec![SLo::ZERO; n];
    let mut ws: CycleWorkspace<SLo> = CycleWorkspace::new(levels, opts.restart);

    let rho0 = dist_norm2_checked(comm, &mut stats, Motif::Dot, &prob.b)?;
    let mut history = Vec::new();
    let mut iters = 0usize;
    let mut restarts = 0usize;
    let mut relres;
    let mut converged = false;

    // Restore a prior run's outer state if requested. `rho0` and the
    // ghost entries are deterministic recomputations, so resuming from
    // `x` + counters + history replays the rest of the run exactly.
    if let Some(spec) = ckpt {
        if spec.restore {
            if let Some(saved) = checkpoint::restore(comm, spec, n)? {
                x[..n].copy_from_slice(&saved.x);
                iters = saved.iters;
                restarts = saved.restarts;
                history = saved.history;
            }
        }
    }

    loop {
        // Line 7: double-precision residual r = b − A x.
        dist_spmv_checked::<f64, C>(&ctx, &levels[0], &mut stats, 0, &mut x, &mut ax)?;
        waxpby_op(&mut stats, 1.0, &prob.b, -1.0, &ax, &mut r);
        let rho = dist_norm2_checked(comm, &mut stats, Motif::Dot, &r)?;
        relres = if rho0 > 0.0 { rho / rho0 } else { 0.0 };
        if opts.track_history {
            history.push(relres);
        }
        if relres < opts.tol {
            converged = true;
            break;
        }
        if !rho.is_finite() {
            // The inner precision broke down (inf/NaN residual); no
            // further cycle can repair it. Report honestly.
            break;
        }
        if iters >= opts.max_iters {
            break;
        }

        // Lines 11–12: normalize and hand off to the low-precision
        // Krylov space (a fused scale-and-narrow kernel, §3.2.5).
        let t0 = Instant::now();
        scale_f64_into_lo(1.0 / rho, &r, &mut r_unit_lo);
        stats.record(Motif::Waxpby, t0.elapsed().as_secs_f64(), crate::flops::scal(n));

        // The blue region: one restart cycle entirely in low precision,
        // under the policy's storage/wire mapping.
        let outcome = {
            let _sp = timeline.span("gmres cycle", Stream::Compute);
            gmres_cycle(
                &ctx_inner,
                prob,
                &mut stats,
                &mut ws,
                opts,
                &r_unit_lo,
                rho,
                rho0,
                opts.max_iters - iters,
            )?
        };
        iters += outcome.iters;
        restarts += 1;
        hpgmxp_trace::counter!("solver.restarts").inc();
        hpgmxp_trace::counter!("solver.iters").add(outcome.iters as u64);

        // Line 47: mixed-precision solution update in double.
        axpy_lo_mixed_op(&mut stats, 1.0, &outcome.update, &mut x[..n]);

        // Write-ahead checkpoint at the outer-iteration boundary: the
        // next loop pass recomputes everything else from `x`.
        if let Some(spec) = ckpt {
            if restarts.is_multiple_of(spec.interval) {
                let state = checkpoint::OuterState {
                    iters,
                    restarts,
                    history: history.clone(),
                    x: x[..n].to_vec(),
                };
                checkpoint::stage_and_commit(comm, spec, &state)?;
            }
        }
        if outcome.iters == 0 {
            break;
        }
    }

    if let (Some(start), Some(end)) = (coll_at_start, comm.coll_stats()) {
        timeline.set_collectives(end.since(&start));
    }

    let solution = x[..n].to_vec();
    Ok((
        solution,
        SolveStats {
            iters,
            restarts,
            converged,
            final_relres: relres,
            history,
            motifs: stats,
            overlap_efficiency: timeline.overlap_efficiency(),
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ImplVariant;
    use crate::gmres::gmres_solve_f64;
    use crate::problem::{assemble, ProblemSpec};
    use hpgmxp_comm::{run_spmd, SelfComm};
    use hpgmxp_geometry::{ProcGrid, Stencil27};

    fn spec(procs: ProcGrid, n: u32, levels: usize) -> ProblemSpec {
        ProblemSpec {
            local: (n, n, n),
            procs,
            stencil: Stencil27::symmetric(),
            mg_levels: levels,
            seed: 11,
        }
    }

    #[test]
    fn reaches_double_precision_accuracy_with_f32_inner() {
        // The defining property of GMRES-IR: 9 orders of residual
        // reduction despite the entire inner solve running in f32
        // (f32 alone bottoms out near 1e-7).
        let prob = assemble(&spec(ProcGrid::new(1, 1, 1), 16, 4), 0);
        let tl = Timeline::disabled();
        let opts = GmresOptions { max_iters: 1000, ..Default::default() };
        let (x, st) = gmres_ir_solve(&SelfComm, &prob, &opts, &tl);
        assert!(st.converged, "GMRES-IR stalled at relres {}", st.final_relres);
        assert!(st.final_relres < 1e-9);
        for xi in &x {
            assert!((xi - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn iteration_penalty_is_small() {
        // §4: n_d = 2305 vs n_ir = 2382 on Frontier (ratio 0.968). At
        // laptop scale the double solver converges within its very first
        // restart cycle, so the one extra refinement cycle GMRES-IR
        // needs to polish past the f32 stall weighs relatively more —
        // the ratio is legitimately lower here and approaches the
        // paper's band as the problem (and hence n_d) grows.
        let prob = assemble(&spec(ProcGrid::new(1, 1, 1), 16, 4), 0);
        let tl = Timeline::disabled();
        let opts = GmresOptions { max_iters: 2000, ..Default::default() };
        let (_, st_d) = gmres_solve_f64(&SelfComm, &prob, &opts, &tl);
        let (_, st_ir) = gmres_ir_solve(&SelfComm, &prob, &opts, &tl);
        assert!(st_d.converged && st_ir.converged);
        let ratio = st_d.iters as f64 / st_ir.iters as f64;
        assert!(
            (0.55..=1.1).contains(&ratio),
            "nd/nir = {}/{} = {} outside the expected band",
            st_d.iters,
            st_ir.iters,
            ratio
        );
        // The absolute overhead stays within one restart cycle.
        assert!(st_ir.iters <= st_d.iters + 30);
    }

    #[test]
    fn distributed_ir_converges() {
        let procs = ProcGrid::new(2, 2, 1);
        let results = run_spmd(4, move |c| {
            let prob = assemble(&spec(procs, 8, 3), c.rank());
            let tl = Timeline::disabled();
            let opts = GmresOptions { max_iters: 800, ..Default::default() };
            let (x, st) = gmres_ir_solve(&c, &prob, &opts, &tl);
            let err = x.iter().map(|xi| (xi - 1.0).abs()).fold(0.0f64, f64::max);
            (st.converged, st.final_relres, err)
        });
        for (conv, relres, err) in results {
            assert!(conv, "relres {}", relres);
            assert!(err < 1e-5);
        }
    }

    #[test]
    fn rank0_allreduce_receive_load_drops_to_log_p() {
        // The headline of the collective engine: the same solve, the
        // same results, but rank 0 stops being the hot spot. Under the
        // star algorithm the root receives P-1 messages per allreduce;
        // under recursive doubling every rank receives ceil(log2 P).
        use hpgmxp_comm::{rd_rounds, run_threads, set_algo_override, CollAlgo};
        let procs = ProcGrid::new(2, 2, 1);
        let run = |algo: CollAlgo| {
            set_algo_override(Some(algo));
            let stats = run_threads(4, |c| {
                let prob = assemble(&spec(procs, 8, 2), c.rank());
                let tl = Timeline::disabled();
                let opts = GmresOptions { max_iters: 300, ..Default::default() };
                let (_, st) = gmres_ir_solve(&c, &prob, &opts, &tl);
                assert!(st.converged);
                tl.collective_stats().expect("the solver records its collective traffic")
            });
            set_algo_override(None);
            stats
        };
        let star = run(CollAlgo::Star);
        let rd = run(CollAlgo::RecursiveDoubling);

        // Bit-identical algorithms take identical iteration paths, so
        // the operation counts agree; only the traffic shape differs.
        let m = star[0].allreduces;
        assert!(m > 0);
        assert_eq!(rd[0].allreduces, m);
        assert_eq!(star[0].recvs, m * 3, "star root receives P-1 messages per allreduce");
        assert_eq!(star[1].recvs, m, "star leaves receive only the broadcast");
        for s in &rd {
            assert_eq!(
                s.recvs,
                m * u64::from(rd_rounds(4)),
                "recursive doubling spreads ceil(log2 P) receives evenly"
            );
        }
    }

    #[test]
    fn reference_variant_ir_converges() {
        let prob = assemble(&spec(ProcGrid::new(1, 1, 1), 8, 2), 0);
        let tl = Timeline::disabled();
        let opts =
            GmresOptions { max_iters: 500, variant: ImplVariant::Reference, ..Default::default() };
        let (_, st) = gmres_ir_solve(&SelfComm, &prob, &opts, &tl);
        assert!(st.converged);
    }

    #[test]
    fn history_decreases_across_refinements() {
        let prob = assemble(&spec(ProcGrid::new(1, 1, 1), 16, 3), 0);
        let tl = Timeline::disabled();
        let opts = GmresOptions { max_iters: 600, track_history: true, ..Default::default() };
        let (_, st) = gmres_ir_solve(&SelfComm, &prob, &opts, &tl);
        assert!(st.history.len() >= 2);
        for w in st.history.windows(2) {
            assert!(w[1] <= w[0] * (1.0 + 1e-9), "refinement must not diverge: {:?}", st.history);
        }
    }

    #[test]
    fn fp16_inner_solver_still_reaches_nine_orders() {
        // The §5 future-work configuration: the blue region at emulated
        // IEEE half precision. Iterative refinement must still converge
        // to the f64-grade tolerance — fp16 resolution (~1e-3) only
        // slows the per-cycle digit gain, it does not cap the final
        // accuracy. That is the whole point of keeping lines 7 and 47
        // in double.
        let prob = assemble(&spec(ProcGrid::new(1, 1, 1), 8, 2), 0);
        let tl = Timeline::disabled();
        let opts = GmresOptions { max_iters: 3000, ..Default::default() };
        let (x, st16) = gmres_ir_solve_fp16(&SelfComm, &prob, &opts, &tl);
        assert!(st16.converged, "fp16 GMRES-IR stalled at {}", st16.final_relres);
        assert!(st16.final_relres < 1e-9);
        for xi in &x {
            assert!((xi - 1.0).abs() < 1e-6);
        }
        // And the penalty ordering: fp16 needs at least as many
        // iterations as fp32, which needs at least as many as f64.
        let (_, st32) = gmres_ir_solve(&SelfComm, &prob, &opts, &tl);
        let (_, st64) = gmres_solve_f64(&SelfComm, &prob, &opts, &tl);
        assert!(st16.iters >= st32.iters, "{} vs {}", st16.iters, st32.iters);
        assert!(st32.iters >= st64.iters, "{} vs {}", st32.iters, st64.iters);
    }

    #[test]
    fn nonsymmetric_problem_converges() {
        // GMRES's raison d'être: nonsymmetric operators (CG would fail).
        let prob = assemble(
            &ProblemSpec {
                local: (8, 8, 8),
                procs: ProcGrid::new(1, 1, 1),
                stencil: Stencil27::nonsymmetric(0.5),
                mg_levels: 2,
                seed: 11,
            },
            0,
        );
        let tl = Timeline::disabled();
        let opts = GmresOptions { max_iters: 600, ..Default::default() };
        let (x, st) = gmres_ir_solve(&SelfComm, &prob, &opts, &tl);
        assert!(st.converged);
        for xi in &x {
            assert!((xi - 1.0).abs() < 1e-5);
        }
    }
}
