//! The HPG-MxP benchmark core: problem, preconditioner, solvers, and
//! the three benchmark phases.
//!
//! This crate assembles the distributed benchmark problem on top of
//! `hpgmxp-geometry`, runs the computational motifs of `hpgmxp-sparse`
//! through the communication substrate of `hpgmxp-comm`, and implements
//! the complete solver stack of the paper:
//!
//! * [`config`] — the benchmark parameters of Table 1;
//! * [`problem`] — distributed assembly of the 27-point operator and
//!   the full 4-level multigrid hierarchy, in both precisions and both
//!   storage formats, with coloring, level schedules, and halo plans;
//! * [`motifs`] — the motif taxonomy (GS, SpMV, Ortho, Restriction, …)
//!   with per-motif time/FLOP accounting;
//! * [`flops`] — the operation-count model used for the GFLOP/s metric;
//! * [`ops`] — distributed kernels: overlapped SpMV, multicolor
//!   Gauss–Seidel, the fused SpMV-restriction (§3.2.4), reductions;
//! * [`mg`] — the geometric multigrid V-cycle preconditioner;
//! * [`givens`] — Givens-rotation QR of the Hessenberg matrix;
//! * [`ortho`] — distributed CGS2 (and MGS) orthogonalization;
//! * [`matrix_free`] — the stencil operator applied without a stored
//!   matrix (the conclusion's matrix-free GMRES configuration);
//! * [`gmres`] — restarted right-preconditioned GMRES, Algorithm 2;
//! * [`gmres_ir`] — mixed-precision GMRES-IR, Algorithm 3;
//! * [`cg`] — the HPCG baseline (preconditioned CG, Algorithm 1);
//! * [`checkpoint`] — write-ahead checkpoint/restore of the GMRES-IR
//!   outer iteration (crash-consistent two-phase commit, CRC-framed);
//! * [`policy`] — the precision-policy engine: runtime-selected
//!   storage (per level) / compute / wire precisions, decoupled;
//! * [`benchmark`] — validation (standard and fullscale, §3.3), the
//!   timed phases, the penalty metric, and report generation.

pub mod benchmark;
pub mod cg;
pub mod checkpoint;
pub mod config;
pub mod flops;
pub mod givens;
pub mod gmres;
pub mod gmres_ir;
pub mod matrix_free;
pub mod mg;
pub mod motifs;
pub mod ops;
pub mod ortho;
pub mod policy;
pub mod problem;

pub use benchmark::{BenchmarkReport, ValidationMode, ValidationResult};
pub use checkpoint::{CheckpointSpec, OuterState};
pub use config::{BenchmarkParams, ImplVariant};
pub use gmres::{GmresOptions, SolveStats};
pub use gmres_ir::gmres_ir_solve_ckpt;
pub use motifs::{Motif, MotifStats};
pub use policy::{PrecCtx, PrecisionPolicy};
pub use problem::{Level, LocalProblem, ProblemSpec};
