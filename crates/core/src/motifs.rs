//! Motif taxonomy and per-motif time/FLOP accounting.
//!
//! The benchmark attributes every floating-point operation and every
//! second of runtime to one of the computational motifs the paper's
//! figures break performance down into (figure 7's GS / Ortho / SpMV /
//! Restr bars, figure 5's per-motif speedups). FLOPs of different
//! precisions are counted equally, so the reported GFLOP/s is a
//! mixed-precision number — exactly the benchmark's metric.

use serde::{Deserialize, Serialize};
use std::time::Instant;

/// The computational motifs tracked by the benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Motif {
    /// Gauss–Seidel smoother sweeps (the bulk of the multigrid cycle).
    GaussSeidel,
    /// Sparse matrix–vector products (fine-grid operator applications).
    SpMV,
    /// CGS2 orthogonalization: batched GEMV-T/GEMV plus norms.
    Ortho,
    /// Multigrid restriction (fused residual + injection).
    Restriction,
    /// Multigrid prolongation and coarse-grid correction.
    Prolongation,
    /// Stand-alone dot products / norms (outer residual checks).
    Dot,
    /// Vector updates (WAXPBY/AXPY, including the mixed-precision ones).
    Waxpby,
    /// Halo exchange and all-reduce time not hidden under compute.
    Comm,
}

impl Motif {
    /// All motifs, in reporting order.
    pub const ALL: [Motif; 8] = [
        Motif::GaussSeidel,
        Motif::SpMV,
        Motif::Ortho,
        Motif::Restriction,
        Motif::Prolongation,
        Motif::Dot,
        Motif::Waxpby,
        Motif::Comm,
    ];

    /// Short label used in report tables (matches the paper's figure 7).
    pub fn label(self) -> &'static str {
        match self {
            Motif::GaussSeidel => "GS",
            Motif::SpMV => "SpMV",
            Motif::Ortho => "Ortho",
            Motif::Restriction => "Restr",
            Motif::Prolongation => "Prolong",
            Motif::Dot => "Dot",
            Motif::Waxpby => "Waxpby",
            Motif::Comm => "Comm",
        }
    }

    fn index(self) -> usize {
        match self {
            Motif::GaussSeidel => 0,
            Motif::SpMV => 1,
            Motif::Ortho => 2,
            Motif::Restriction => 3,
            Motif::Prolongation => 4,
            Motif::Dot => 5,
            Motif::Waxpby => 6,
            Motif::Comm => 7,
        }
    }
}

/// Accumulated seconds, FLOPs, and measured data traffic per motif.
///
/// Traffic is *measured* in the only sense available without hardware
/// counters: accumulated at kernel execution time from the actual data
/// structures each kernel traversed (stored matrix values at their
/// storage precision, index metadata, vector passes at the accumulate
/// precision, wire payloads at the wire precision). This is what the
/// precision-policy engine reconciles against the machine model's
/// closed-form byte accounting.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MotifStats {
    seconds: [f64; 8],
    flops: [f64; 8],
    /// Total data bytes touched (matrix values + indices + vectors,
    /// or wire payloads for [`Motif::Comm`]).
    bytes: [f64; 8],
    /// Matrix *value* bytes only — the storage-precision-dependent
    /// share a policy shrinks (the paper's ~2x claim is about this).
    value_bytes: [f64; 8],
}

impl MotifStats {
    /// Empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record `secs` of runtime and `flops` operations under a motif.
    pub fn record(&mut self, motif: Motif, secs: f64, flops: f64) {
        self.seconds[motif.index()] += secs;
        self.flops[motif.index()] += flops;
    }

    /// Record measured traffic under a motif: `value_bytes` of matrix
    /// values (at their storage precision) out of `total_bytes` of all
    /// data the kernel touched.
    pub fn record_traffic(&mut self, motif: Motif, value_bytes: f64, total_bytes: f64) {
        self.value_bytes[motif.index()] += value_bytes;
        self.bytes[motif.index()] += total_bytes;
    }

    /// Accumulated measured data bytes of a motif.
    pub fn bytes(&self, motif: Motif) -> f64 {
        self.bytes[motif.index()]
    }

    /// Accumulated measured matrix-value bytes of a motif.
    pub fn value_bytes(&self, motif: Motif) -> f64 {
        self.value_bytes[motif.index()]
    }

    /// Total measured bytes across motifs.
    pub fn total_bytes(&self) -> f64 {
        self.bytes.iter().sum()
    }

    /// Time a closure and attribute it to a motif with the given FLOPs.
    pub fn timed<T>(&mut self, motif: Motif, flops: f64, f: impl FnOnce() -> T) -> T {
        let t0 = Instant::now();
        let out = f();
        self.record(motif, t0.elapsed().as_secs_f64(), flops);
        out
    }

    /// Accumulated seconds of a motif.
    pub fn seconds(&self, motif: Motif) -> f64 {
        self.seconds[motif.index()]
    }

    /// Accumulated FLOPs of a motif.
    pub fn flops(&self, motif: Motif) -> f64 {
        self.flops[motif.index()]
    }

    /// Total seconds across motifs.
    pub fn total_seconds(&self) -> f64 {
        self.seconds.iter().sum()
    }

    /// Total FLOPs across motifs.
    pub fn total_flops(&self) -> f64 {
        self.flops.iter().sum()
    }

    /// GFLOP/s of one motif (0 if it has no recorded time).
    pub fn gflops(&self, motif: Motif) -> f64 {
        let s = self.seconds(motif);
        if s > 0.0 {
            self.flops(motif) / s / 1e9
        } else {
            0.0
        }
    }

    /// Overall GFLOP/s.
    pub fn total_gflops(&self) -> f64 {
        let s = self.total_seconds();
        if s > 0.0 {
            self.total_flops() / s / 1e9
        } else {
            0.0
        }
    }

    /// Merge another accumulator into this one (per-rank → per-run).
    pub fn merge(&mut self, other: &MotifStats) {
        for i in 0..8 {
            self.seconds[i] += other.seconds[i];
            self.flops[i] += other.flops[i];
            self.bytes[i] += other.bytes[i];
            self.value_bytes[i] += other.value_bytes[i];
        }
    }

    /// Reset all counters.
    pub fn clear(&mut self) {
        *self = Self::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_query() {
        let mut s = MotifStats::new();
        s.record(Motif::SpMV, 2.0, 4e9);
        s.record(Motif::SpMV, 2.0, 4e9);
        s.record(Motif::Ortho, 1.0, 1e9);
        assert_eq!(s.seconds(Motif::SpMV), 4.0);
        assert_eq!(s.flops(Motif::SpMV), 8e9);
        assert_eq!(s.gflops(Motif::SpMV), 2.0);
        assert_eq!(s.total_seconds(), 5.0);
        assert_eq!(s.total_flops(), 9e9);
        assert!((s.total_gflops() - 1.8).abs() < 1e-12);
    }

    #[test]
    fn zero_time_gives_zero_gflops() {
        let s = MotifStats::new();
        assert_eq!(s.gflops(Motif::GaussSeidel), 0.0);
        assert_eq!(s.total_gflops(), 0.0);
    }

    #[test]
    fn timed_closure_runs_and_records() {
        let mut s = MotifStats::new();
        let v = s.timed(Motif::Dot, 100.0, || 42);
        assert_eq!(v, 42);
        assert_eq!(s.flops(Motif::Dot), 100.0);
        assert!(s.seconds(Motif::Dot) >= 0.0);
    }

    #[test]
    fn traffic_recording_and_merge() {
        let mut s = MotifStats::new();
        s.record_traffic(Motif::SpMV, 100.0, 160.0);
        s.record_traffic(Motif::SpMV, 100.0, 160.0);
        s.record_traffic(Motif::Comm, 0.0, 32.0);
        assert_eq!(s.value_bytes(Motif::SpMV), 200.0);
        assert_eq!(s.bytes(Motif::SpMV), 320.0);
        assert_eq!(s.bytes(Motif::Comm), 32.0);
        assert_eq!(s.total_bytes(), 352.0);
        let mut t = MotifStats::new();
        t.merge(&s);
        assert_eq!(t.bytes(Motif::SpMV), 320.0);
        assert_eq!(t.value_bytes(Motif::SpMV), 200.0);
    }

    #[test]
    fn merge_sums() {
        let mut a = MotifStats::new();
        a.record(Motif::GaussSeidel, 1.0, 10.0);
        let mut b = MotifStats::new();
        b.record(Motif::GaussSeidel, 2.0, 20.0);
        b.record(Motif::Comm, 1.0, 0.0);
        a.merge(&b);
        assert_eq!(a.seconds(Motif::GaussSeidel), 3.0);
        assert_eq!(a.flops(Motif::GaussSeidel), 30.0);
        assert_eq!(a.seconds(Motif::Comm), 1.0);
    }

    #[test]
    fn labels_match_paper_figure7() {
        assert_eq!(Motif::GaussSeidel.label(), "GS");
        assert_eq!(Motif::Ortho.label(), "Ortho");
        assert_eq!(Motif::SpMV.label(), "SpMV");
        assert_eq!(Motif::Restriction.label(), "Restr");
    }

    #[test]
    fn all_lists_every_motif_once() {
        let mut idx: Vec<usize> = Motif::ALL.iter().map(|m| m.index()).collect();
        idx.sort_unstable();
        assert_eq!(idx, (0..8).collect::<Vec<_>>());
    }
}
