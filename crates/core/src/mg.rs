//! The geometric multigrid V-cycle preconditioner.
//!
//! HPG-MxP prescribes one cycle of 4-level geometric multigrid with a
//! forward Gauss–Seidel smoother as the GMRES preconditioner (§3); the
//! HPCG baseline uses the same cycle with a *symmetric* smoother so the
//! preconditioner stays symmetric positive definite for CG. The cycle
//! follows figure 1 of the paper: pre-smooth, (fused) residual +
//! restriction, recursive coarse solve, prolongation + correction,
//! post-smooth; the coarsest level is only smoothed.

use crate::motifs::MotifStats;
use crate::ops::{dist_gs_sweep_checked, dist_restrict_checked, prolong_add, OpCtx, SweepDir};
use crate::problem::Level;
use hpgmxp_comm::{Comm, CommResult, Stream};
use hpgmxp_sparse::Scalar;

/// Per-depth span names for the V-cycle trace (`&'static` because the
/// recorder stores names by reference; deeper hierarchies than the
/// paper's 4 levels share the last slot).
const LEVEL_SPANS: [&str; 8] = [
    "MG level 0",
    "MG level 1",
    "MG level 2",
    "MG level 3",
    "MG level 4",
    "MG level 5",
    "MG level 6",
    "MG level 7+",
];

/// Which smoother the cycle uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SmootherKind {
    /// Forward Gauss–Seidel (HPG-MxP's prescription).
    Forward,
    /// Symmetric Gauss–Seidel (forward then backward; HPCG baseline).
    Symmetric,
}

/// Preallocated per-level vectors of one precision.
#[derive(Debug, Clone)]
pub struct MgWorkspace<S> {
    /// Solution/correction per level (owned + ghosts).
    z: Vec<Vec<S>>,
    /// Right-hand side per level (owned entries).
    r: Vec<Vec<S>>,
}

impl<S: Scalar> MgWorkspace<S> {
    /// Allocate for a level hierarchy.
    pub fn new(levels: &[Level]) -> Self {
        MgWorkspace {
            z: levels.iter().map(|l| vec![S::ZERO; l.vec_len()]).collect(),
            r: levels.iter().map(|l| vec![S::ZERO; l.n_local()]).collect(),
        }
    }
}

#[allow(clippy::too_many_arguments)] // mirrors the paper's smoother signature; bundling would obscure it
fn smooth<S: Scalar, C: Comm>(
    ctx: &OpCtx<C>,
    level: &Level,
    stats: &mut MotifStats,
    tag: u64,
    kind: SmootherKind,
    sweeps: usize,
    r: &[S],
    z: &mut [S],
) -> CommResult<()> {
    for _ in 0..sweeps {
        match kind {
            SmootherKind::Forward => {
                dist_gs_sweep_checked(ctx, level, stats, tag, SweepDir::Forward, r, z)?
            }
            SmootherKind::Symmetric => {
                dist_gs_sweep_checked(ctx, level, stats, tag, SweepDir::Forward, r, z)?;
                dist_gs_sweep_checked(ctx, level, stats, tag, SweepDir::Backward, r, z)?;
            }
        }
    }
    Ok(())
}

#[allow(clippy::too_many_arguments)]
fn vcycle<S: Scalar, C: Comm>(
    ctx: &OpCtx<C>,
    levels: &[Level],
    stats: &mut MotifStats,
    zs: &mut [Vec<S>],
    rs: &mut [Vec<S>],
    pre: usize,
    post: usize,
    kind: SmootherKind,
    tag: u64,
) -> CommResult<()> {
    let level = &levels[0];
    // `tag` starts at 100 on the fine level and grows by one per
    // recursion, so it doubles as the depth for the trace label.
    let depth = (tag.saturating_sub(100) as usize).min(LEVEL_SPANS.len() - 1);
    let _sp = ctx.timeline.span(LEVEL_SPANS[depth], Stream::Compute);
    let (z0, zrest) = zs.split_first_mut().expect("workspace depth");
    let (r0, rrest) = rs.split_first_mut().expect("workspace depth");

    // Zero initial guess on every level, ghosts included.
    z0.fill(S::ZERO);
    smooth(ctx, level, stats, tag, kind, pre.max(1), r0, z0)?;

    if levels.len() > 1 {
        dist_restrict_checked(ctx, level, stats, tag, r0, z0, &mut rrest[0])?;
        vcycle(ctx, &levels[1..], stats, zrest, rrest, pre, post, kind, tag + 1)?;
        prolong_add(level, stats, &zrest[0], z0);
        smooth(ctx, level, stats, tag, kind, post.max(1), r0, z0)?;
    }
    Ok(())
}

/// Apply one multigrid V-cycle as the preconditioner: `out = M⁻¹ rhs`.
///
/// `rhs` is an owned-length vector on the fine level; `out` receives
/// the owned entries of the correction (callers that need ghosts must
/// exchange afterwards — the next SpMV does so automatically).
#[allow(clippy::too_many_arguments)]
pub fn apply_mg<S: Scalar, C: Comm>(
    ctx: &OpCtx<C>,
    levels: &[Level],
    stats: &mut MotifStats,
    ws: &mut MgWorkspace<S>,
    pre: usize,
    post: usize,
    kind: SmootherKind,
    rhs: &[S],
    out: &mut [S],
) {
    apply_mg_checked(ctx, levels, stats, ws, pre, post, kind, rhs, out)
        .unwrap_or_else(|e| panic!("{e}"));
}

/// [`apply_mg`] that surfaces transport faults as a typed error.
#[allow(clippy::too_many_arguments)]
pub fn apply_mg_checked<S: Scalar, C: Comm>(
    ctx: &OpCtx<C>,
    levels: &[Level],
    stats: &mut MotifStats,
    ws: &mut MgWorkspace<S>,
    pre: usize,
    post: usize,
    kind: SmootherKind,
    rhs: &[S],
    out: &mut [S],
) -> CommResult<()> {
    let n = levels[0].n_local();
    ws.r[0][..n].copy_from_slice(&rhs[..n]);
    vcycle(ctx, levels, stats, &mut ws.z, &mut ws.r, pre, post, kind, 100)?;
    out[..n].copy_from_slice(&ws.z[0][..n]);
    Ok(())
}

/// Apply the identity "preconditioner" (no multigrid) — used by tests
/// and ablation benches to quantify what the V-cycle buys.
pub fn apply_identity<S: Scalar>(rhs: &[S], out: &mut [S]) {
    let n = rhs.len().min(out.len());
    out[..n].copy_from_slice(&rhs[..n]);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ImplVariant;
    use crate::motifs::Motif;
    use crate::ops::dist_gs_sweep;
    use crate::problem::{assemble, ProblemSpec};
    use hpgmxp_comm::{run_spmd, SelfComm, Timeline};
    use hpgmxp_geometry::{ProcGrid, Stencil27};

    fn problem_1rank(n: u32, levels: usize) -> crate::problem::LocalProblem {
        assemble(
            &ProblemSpec {
                local: (n, n, n),
                procs: ProcGrid::new(1, 1, 1),
                stencil: Stencil27::symmetric(),
                mg_levels: levels,
                seed: 5,
            },
            0,
        )
    }

    fn residual_norm(p: &crate::problem::LocalProblem, rhs: &[f64], z: &[f64]) -> f64 {
        let l = &p.levels[0];
        let mut x = vec![0.0f64; l.vec_len()];
        x[..l.n_local()].copy_from_slice(&z[..l.n_local()]);
        let mut az = vec![0.0f64; l.n_local()];
        l.csr64().spmv(&x, &mut az);
        rhs.iter().zip(az.iter()).map(|(r, a)| (r - a) * (r - a)).sum::<f64>().sqrt()
    }

    #[test]
    fn vcycle_reduces_residual_far_more_than_one_sweep() {
        let p = problem_1rank(16, 4);
        let comm = SelfComm;
        let tl = Timeline::disabled();
        let ctx = OpCtx::new(&comm, ImplVariant::Optimized, &tl);
        let mut stats = MotifStats::new();
        let mut ws: MgWorkspace<f64> = MgWorkspace::new(&p.levels);
        let rhs = p.b.clone();
        let r0 = residual_norm(&p, &rhs, &vec![0.0; p.n_local()]);

        // One V-cycle.
        let mut z_mg = vec![0.0f64; p.n_local()];
        apply_mg(
            &ctx,
            &p.levels,
            &mut stats,
            &mut ws,
            1,
            1,
            SmootherKind::Forward,
            &rhs,
            &mut z_mg,
        );
        let r_mg = residual_norm(&p, &rhs, &z_mg);

        // One plain fine-grid sweep.
        let mut z_gs = vec![0.0f64; p.levels[0].vec_len()];
        let mut s2 = MotifStats::new();
        dist_gs_sweep(&ctx, &p.levels[0], &mut s2, 0, SweepDir::Forward, &rhs, &mut z_gs);
        let r_gs = residual_norm(&p, &rhs, &z_gs);

        assert!(r_mg < r0, "V-cycle reduces the residual");
        assert!(
            r_mg < r_gs,
            "coarse correction beats a single smoother sweep: {} vs {}",
            r_mg,
            r_gs
        );
    }

    #[test]
    fn repeated_vcycles_converge() {
        let p = problem_1rank(8, 2);
        let comm = SelfComm;
        let tl = Timeline::disabled();
        let ctx = OpCtx::new(&comm, ImplVariant::Optimized, &tl);
        let mut stats = MotifStats::new();
        let mut ws: MgWorkspace<f64> = MgWorkspace::new(&p.levels);
        let n = p.n_local();

        // Stationary iteration x <- x + M^{-1}(b - Ax).
        let mut x = vec![0.0f64; p.levels[0].vec_len()];
        let mut r = vec![0.0f64; n];
        let mut z = vec![0.0f64; n];
        let r0 = residual_norm(&p, &p.b, &vec![0.0; n]);
        for _ in 0..30 {
            let mut ax = vec![0.0f64; n];
            p.levels[0].csr64().spmv(&x, &mut ax);
            for i in 0..n {
                r[i] = p.b[i] - ax[i];
            }
            apply_mg(&ctx, &p.levels, &mut stats, &mut ws, 1, 1, SmootherKind::Forward, &r, &mut z);
            for i in 0..n {
                x[i] += z[i];
            }
        }
        let rfinal = residual_norm(&p, &p.b, &x[..n]);
        assert!(
            rfinal < r0 * 1e-6,
            "30 MG iterations must reduce the residual by >1e6: {} -> {}",
            r0,
            rfinal
        );
        // And the solution approaches all-ones.
        for xi in &x[..n] {
            assert!((xi - 1.0).abs() < 1e-3);
        }
    }

    #[test]
    fn mg_records_all_multigrid_motifs() {
        let p = problem_1rank(16, 4);
        let comm = SelfComm;
        let tl = Timeline::disabled();
        let ctx = OpCtx::new(&comm, ImplVariant::Optimized, &tl);
        let mut stats = MotifStats::new();
        let mut ws: MgWorkspace<f64> = MgWorkspace::new(&p.levels);
        let mut z = vec![0.0f64; p.n_local()];
        apply_mg(&ctx, &p.levels, &mut stats, &mut ws, 1, 1, SmootherKind::Forward, &p.b, &mut z);
        // 4 levels: pre-smooth everywhere (4), post-smooth on 3.
        assert!(stats.flops(Motif::GaussSeidel) > 0.0);
        assert!(stats.flops(Motif::Restriction) > 0.0);
        assert!(stats.flops(Motif::Prolongation) > 0.0);
    }

    #[test]
    fn optimized_and_reference_cycles_agree() {
        let procs = ProcGrid::new(2, 1, 1);
        run_spmd(2, move |c| {
            let p = assemble(
                &ProblemSpec {
                    local: (8, 8, 8),
                    procs,
                    stencil: Stencil27::symmetric(),
                    mg_levels: 2,
                    seed: 5,
                },
                c.rank(),
            );
            let tl = Timeline::disabled();
            let mut stats = MotifStats::new();
            let rhs = p.b.clone();
            let n = p.n_local();

            let mut z_opt = vec![0.0f64; n];
            {
                let ctx = OpCtx::new(&c, ImplVariant::Optimized, &tl);
                let mut ws: MgWorkspace<f64> = MgWorkspace::new(&p.levels);
                apply_mg(
                    &ctx,
                    &p.levels,
                    &mut stats,
                    &mut ws,
                    1,
                    1,
                    SmootherKind::Forward,
                    &rhs,
                    &mut z_opt,
                );
            }
            let mut z_ref = vec![0.0f64; n];
            {
                let ctx = OpCtx::new(&c, ImplVariant::Reference, &tl);
                let mut ws: MgWorkspace<f64> = MgWorkspace::new(&p.levels);
                apply_mg(
                    &ctx,
                    &p.levels,
                    &mut stats,
                    &mut ws,
                    1,
                    1,
                    SmootherKind::Forward,
                    &rhs,
                    &mut z_ref,
                );
            }
            // The variants use different smoother orderings (multicolor
            // vs lexicographic), so results differ slightly — but both
            // must reduce the residual to a comparable degree.
            let r_opt = residual_of(&p, &rhs, &z_opt);
            let r_ref = residual_of(&p, &rhs, &z_ref);
            let r0 = rhs.iter().map(|v| v * v).sum::<f64>().sqrt();
            assert!(r_opt < 0.6 * r0);
            assert!(r_ref < 0.6 * r0);
            assert!(r_opt / r_ref < 3.0 && r_ref / r_opt < 3.0);
        });

        fn residual_of(p: &crate::problem::LocalProblem, rhs: &[f64], z: &[f64]) -> f64 {
            // Local residual only — adequate for the comparative check.
            let l = &p.levels[0];
            let mut x = vec![0.0f64; l.vec_len()];
            x[..l.n_local()].copy_from_slice(z);
            let mut az = vec![0.0f64; l.n_local()];
            l.csr64().spmv(&x, &mut az);
            rhs.iter().zip(az.iter()).map(|(r, a)| (r - a) * (r - a)).sum::<f64>().sqrt()
        }
    }

    #[test]
    fn f32_cycle_tracks_f64_cycle() {
        let p = problem_1rank(8, 2);
        let comm = SelfComm;
        let tl = Timeline::disabled();
        let ctx = OpCtx::new(&comm, ImplVariant::Optimized, &tl);
        let mut stats = MotifStats::new();
        let n = p.n_local();

        let mut ws64: MgWorkspace<f64> = MgWorkspace::new(&p.levels);
        let mut z64 = vec![0.0f64; n];
        apply_mg(
            &ctx,
            &p.levels,
            &mut stats,
            &mut ws64,
            1,
            1,
            SmootherKind::Forward,
            &p.b,
            &mut z64,
        );

        let rhs32: Vec<f32> = p.b.iter().map(|&v| v as f32).collect();
        let mut ws32: MgWorkspace<f32> = MgWorkspace::new(&p.levels);
        let mut z32 = vec![0.0f32; n];
        apply_mg(
            &ctx,
            &p.levels,
            &mut stats,
            &mut ws32,
            1,
            1,
            SmootherKind::Forward,
            &rhs32,
            &mut z32,
        );

        for (h, l) in z64.iter().zip(z32.iter()) {
            assert!((h - *l as f64).abs() < 1e-4, "{} vs {}", h, l);
        }
    }

    #[test]
    fn symmetric_smoother_runs_both_directions() {
        let p = problem_1rank(8, 1);
        let comm = SelfComm;
        let tl = Timeline::disabled();
        let ctx = OpCtx::new(&comm, ImplVariant::Optimized, &tl);
        let mut stats = MotifStats::new();
        let mut ws: MgWorkspace<f64> = MgWorkspace::new(&p.levels);
        let mut z = vec![0.0f64; p.n_local()];
        apply_mg(&ctx, &p.levels, &mut stats, &mut ws, 1, 1, SmootherKind::Symmetric, &p.b, &mut z);
        // Symmetric = 2 sweeps; single level => exactly 2 sweeps' flops.
        let per_sweep = crate::flops::gs_sweep(p.levels[0].nnz(), p.n_local());
        assert!((stats.flops(Motif::GaussSeidel) - 2.0 * per_sweep).abs() < 1.0);
    }

    #[test]
    fn identity_preconditioner_copies() {
        let rhs = vec![1.0, 2.0, 3.0];
        let mut out = vec![0.0; 3];
        apply_identity(&rhs, &mut out);
        assert_eq!(out, rhs);
    }
}
