//! The three benchmark phases, the penalty metric, and reporting.
//!
//! HPG-MxP consists of (§3):
//!
//! 1. **validation** — double-precision GMRES is converged 9 orders of
//!    magnitude (iteration count `n_d`), then mixed-precision GMRES-IR
//!    is converged to the same tolerance (`n_ir`); the ratio
//!    `n_d / n_ir` penalizes the mixed-precision rating if below 1;
//! 2. **mixed-precision benchmark** — GMRES-IR runs a fixed number of
//!    iterations repeatedly, with per-motif time and FLOP accounting
//!    (the "mxp" results);
//! 3. **double-precision reference** — the same with pure-f64 GMRES
//!    (the "double" results).
//!
//! §3.3 adds the paper's new **fullscale** validation mode: validation
//! on *all* ranks at the full problem size, with the double solve
//! capped at 10 000 iterations and GMRES-IR required to reach whatever
//! relative residual the double solve achieved (Table 2 compares the
//! two modes).
//!
//! These functions orchestrate whole SPMD worlds (they correspond to
//! the benchmark's `main`), spawning one thread per rank.

use crate::config::{BenchmarkParams, ImplVariant};
use crate::gmres::{gmres_solve_f64, GmresOptions, SolveStats};
use crate::gmres_ir::{gmres_ir_solve, gmres_ir_solve_policy};
use crate::motifs::{Motif, MotifStats};
use crate::policy::PrecisionPolicy;
use crate::problem::{assemble, assemble_with_policy, ProblemSpec};
use hpgmxp_comm::{run_spmd, Comm, Timeline};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Which validation procedure to run (§3.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ValidationMode {
    /// Yamazaki et al.'s method: a small fixed rank count (1 node),
    /// both solvers converged to 1e-9.
    Standard,
    /// The paper's new mode: all ranks and the full problem size; the
    /// double solve is capped at 10 000 iterations and GMRES-IR chases
    /// the residual the double solve achieved.
    FullScale,
}

/// Outcome of the validation phase.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ValidationResult {
    /// Mode used.
    pub mode: ValidationMode,
    /// Ranks that participated.
    pub ranks: usize,
    /// Double-precision GMRES iterations.
    pub nd: usize,
    /// Mixed-precision GMRES-IR iterations to the same target.
    pub nir: usize,
    /// Relative residual the double solve achieved (the IR target in
    /// fullscale mode; ≤1e-9 in standard mode).
    pub achieved_relres: f64,
    /// `n_d / n_ir`.
    pub ratio: f64,
    /// `min(1, n_d / n_ir)` — the factor applied to the mxp GFLOP/s.
    pub penalty: f64,
}

/// Aggregated measurements of one timed phase across all ranks.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PhaseResult {
    /// "mxp" or "double".
    pub label: String,
    /// Ranks in the phase.
    pub ranks: usize,
    /// Inner iterations executed per rank (identical across ranks).
    pub iters: usize,
    /// Wall time of the slowest rank, seconds.
    pub wall_time: f64,
    /// Per-motif seconds of the slowest rank.
    pub motif_seconds: Vec<(String, f64)>,
    /// Per-motif FLOPs summed over ranks.
    pub motif_flops: Vec<(String, f64)>,
    /// Per-motif measured data bytes summed over ranks (matrix values
    /// + indices + vector passes; wire payloads under "Comm").
    pub motif_bytes: Vec<(String, f64)>,
    /// Measured matrix-*value* bytes summed over ranks — the share a
    /// precision policy's storage axis shrinks.
    pub matrix_value_bytes: f64,
    /// Raw (unpenalized) GFLOP/s: total FLOPs / wall time.
    pub gflops_raw: f64,
    /// Measured halo-overlap efficiency (fraction of communication
    /// hidden under interior compute), averaged over the ranks that
    /// recorded exchanges; `None` when no rank exchanged halos (P=1).
    pub overlap_efficiency: Option<f64>,
}

impl PhaseResult {
    fn from_rank_results(label: &str, results: Vec<(SolveStats, f64)>) -> PhaseResult {
        let ranks = results.len();
        let iters = results[0].0.iters;
        let wall_time = results.iter().map(|(_, w)| *w).fold(0.0, f64::max);
        let mut total = MotifStats::new();
        let mut worst = MotifStats::new();
        for (st, _) in &results {
            total.merge(&st.motifs);
        }
        // "Slowest rank" per motif: max seconds across ranks.
        let mut motif_seconds = Vec::new();
        for m in Motif::ALL {
            let s = results.iter().map(|(st, _)| st.motifs.seconds(m)).fold(0.0, f64::max);
            worst.record(m, s, 0.0);
            motif_seconds.push((m.label().to_string(), s));
        }
        let motif_flops: Vec<(String, f64)> =
            Motif::ALL.iter().map(|m| (m.label().to_string(), total.flops(*m))).collect();
        let motif_bytes: Vec<(String, f64)> =
            Motif::ALL.iter().map(|m| (m.label().to_string(), total.bytes(*m))).collect();
        let matrix_value_bytes: f64 = Motif::ALL.iter().map(|m| total.value_bytes(*m)).sum();
        let gflops_raw = if wall_time > 0.0 { total.total_flops() / wall_time / 1e9 } else { 0.0 };
        let effs: Vec<f64> = results.iter().filter_map(|(st, _)| st.overlap_efficiency).collect();
        let overlap_efficiency =
            if effs.is_empty() { None } else { Some(effs.iter().sum::<f64>() / effs.len() as f64) };
        PhaseResult {
            label: label.to_string(),
            ranks,
            iters,
            wall_time,
            motif_seconds,
            motif_flops,
            motif_bytes,
            matrix_value_bytes,
            gflops_raw,
            overlap_efficiency,
        }
    }

    /// Measured data bytes of one motif (summed over ranks).
    pub fn bytes_of(&self, motif: Motif) -> f64 {
        self.motif_bytes.iter().find(|(l, _)| l == motif.label()).map(|(_, v)| *v).unwrap_or(0.0)
    }

    /// Total measured data bytes per inner iteration, per rank.
    pub fn bytes_per_iteration(&self) -> f64 {
        let total: f64 = self.motif_bytes.iter().map(|(_, v)| v).sum();
        if self.iters > 0 {
            total / self.iters as f64 / self.ranks as f64
        } else {
            0.0
        }
    }

    /// FLOPs of one motif (summed over ranks).
    pub fn flops_of(&self, motif: Motif) -> f64 {
        self.motif_flops.iter().find(|(l, _)| l == motif.label()).map(|(_, v)| *v).unwrap_or(0.0)
    }

    /// Seconds of one motif (slowest rank).
    pub fn seconds_of(&self, motif: Motif) -> f64 {
        self.motif_seconds.iter().find(|(l, _)| l == motif.label()).map(|(_, v)| *v).unwrap_or(0.0)
    }
}

/// The complete benchmark outcome.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BenchmarkReport {
    /// Run parameters.
    pub params: BenchmarkParams,
    /// Implementation variant.
    pub variant: ImplVariant,
    /// Ranks of the benchmark phases.
    pub ranks: usize,
    /// Validation outcome (the penalty source).
    pub validation: ValidationResult,
    /// Mixed-precision phase.
    pub mxp: PhaseResult,
    /// Double-precision phase.
    pub double: PhaseResult,
    /// `mxp.gflops_raw × penalty` — the official metric.
    pub penalized_gflops: f64,
    /// Penalized mxp GFLOP/s over double GFLOP/s (figure 5's "total").
    pub speedup: f64,
    /// Kernel dispatch the run executed with: `"<level>/<features>"`
    /// (e.g. `"avx2/avx2+fma+f16c"`).
    pub simd: String,
}

/// The SIMD dispatch descriptor recorded in benchmark reports:
/// resolved kernel level plus detected CPU features.
pub fn simd_descriptor() -> String {
    format!("{}/{}", hpgmxp_sparse::simd::level().name(), hpgmxp_sparse::simd::features().summary())
}

impl BenchmarkReport {
    /// Per-motif penalized speedups (figure 5's bars).
    pub fn motif_speedups(&self) -> Vec<(String, f64)> {
        let mut out = Vec::new();
        for m in [Motif::GaussSeidel, Motif::SpMV, Motif::Ortho, Motif::Restriction] {
            let t_mxp = self.mxp.seconds_of(m);
            let t_dbl = self.double.seconds_of(m);
            let f_mxp = self.mxp.flops_of(m);
            let f_dbl = self.double.flops_of(m);
            if t_mxp > 0.0 && t_dbl > 0.0 && f_mxp > 0.0 {
                let g_mxp = f_mxp / t_mxp * self.validation.penalty;
                let g_dbl = f_dbl / t_dbl;
                out.push((m.label().to_string(), g_mxp / g_dbl));
            }
        }
        out
    }

    /// Render the official-style results table.
    pub fn to_text(&self) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        let _ = writeln!(s, "HPG-MxP benchmark report ({:?})", self.variant);
        let _ = writeln!(s, "  ranks: {}   local grid: {:?}", self.ranks, self.params.local_dims);
        if !self.simd.is_empty() {
            let _ = writeln!(s, "  kernels: simd {}", self.simd);
        }
        let _ = writeln!(
            s,
            "  validation [{:?}]: nd = {}, nir = {}, ratio = {:.4}, penalty = {:.4}",
            self.validation.mode,
            self.validation.nd,
            self.validation.nir,
            self.validation.ratio,
            self.validation.penalty
        );
        for phase in [&self.mxp, &self.double] {
            let _ = writeln!(
                s,
                "  [{}] iters/rank = {}, wall = {:.3}s, raw = {:.3} GF/s",
                phase.label, phase.iters, phase.wall_time, phase.gflops_raw
            );
            for (label, secs) in &phase.motif_seconds {
                if *secs > 0.0 {
                    let flops = phase.motif_flops.iter().find(|(l, _)| l == label).unwrap().1;
                    let _ = writeln!(
                        s,
                        "      {:<8} {:>9.4}s  {:>10.3} GF/s",
                        label,
                        secs,
                        flops / secs / 1e9
                    );
                }
            }
        }
        let _ = writeln!(s, "  penalized mxp: {:.3} GF/s", self.penalized_gflops);
        let _ = writeln!(s, "  speedup (mxp/double): {:.3}x", self.speedup);
        s
    }
}

fn spec_for(params: &BenchmarkParams, ranks: usize) -> ProblemSpec {
    ProblemSpec::from_params(params, ranks)
}

/// Run the validation phase (both solvers to the target tolerance) on
/// `ranks` thread-ranks and compute the penalty.
pub fn validate(
    params: &BenchmarkParams,
    variant: ImplVariant,
    ranks: usize,
    mode: ValidationMode,
) -> ValidationResult {
    let v_ranks = match mode {
        ValidationMode::Standard => params.validation_ranks.min(ranks),
        ValidationMode::FullScale => ranks,
    };
    let params = *params;
    let spec = spec_for(&params, v_ranks);

    let results = run_spmd(v_ranks, move |c| {
        let prob = assemble(&spec, c.rank());
        let tl = Timeline::disabled();
        // Double-precision solve: to 1e-9, capped at 10 000 iterations.
        let d_opts = GmresOptions {
            restart: params.restart,
            max_iters: params.validation_max_iters,
            tol: params.validation_tol,
            variant,
            pre_smooth: params.pre_smooth,
            post_smooth: params.post_smooth,
            precondition: true,
            ortho: crate::gmres::OrthoMethod::Cgs2,
            track_history: false,
        };
        let (_, st_d) = gmres_solve_f64(&c, &prob, &d_opts, &tl);

        // IR target: in fullscale mode, whatever the double solve
        // achieved (it may have hit the iteration cap first); in
        // standard mode the fixed tolerance.
        let target = match mode {
            ValidationMode::Standard => params.validation_tol,
            ValidationMode::FullScale => st_d.final_relres.max(params.validation_tol),
        };
        // GMRES-IR chases the double solve's achieved residual; it may
        // legitimately need more iterations than n_d (that is what the
        // penalty measures), so its budget is not capped by n_d.
        let ir_opts = GmresOptions {
            tol: target,
            max_iters: params.validation_max_iters.saturating_mul(2),
            ..d_opts
        };
        let (_, st_ir) = gmres_ir_solve(&c, &prob, &ir_opts, &tl);
        (st_d.iters, st_d.final_relres, st_ir.iters, st_ir.converged)
    });

    let (nd, achieved, nir, ir_ok) = results[0];
    assert!(
        ir_ok,
        "GMRES-IR failed to reach the validation target {achieved:.3e} within {} iterations",
        params.validation_max_iters * 2
    );
    let ratio = nd as f64 / nir as f64;
    ValidationResult {
        mode,
        ranks: v_ranks,
        nd,
        nir,
        achieved_relres: achieved,
        ratio,
        penalty: ratio.min(1.0),
    }
}

/// Run one timed phase: `benchmark_solves` solves of exactly
/// `max_iters_per_solve` iterations each (tolerance zero, as in the
/// benchmark's fixed-iteration timing loop), in mixed or double
/// precision.
pub fn run_phase(
    params: &BenchmarkParams,
    variant: ImplVariant,
    ranks: usize,
    mixed: bool,
) -> PhaseResult {
    let params = *params;
    let spec = spec_for(&params, ranks);
    let results = run_spmd(ranks, move |c| {
        let prob = assemble(&spec, c.rank());
        // Enabled so the phase carries measured overlap efficiency
        // (per-exchange records are a few words each — negligible
        // against the solve itself).
        let tl = Timeline::enabled();
        let opts = GmresOptions {
            restart: params.restart,
            max_iters: params.max_iters_per_solve,
            tol: 0.0,
            variant,
            pre_smooth: params.pre_smooth,
            post_smooth: params.post_smooth,
            precondition: true,
            ortho: crate::gmres::OrthoMethod::Cgs2,
            track_history: false,
        };
        let t0 = Instant::now();
        let mut agg: Option<SolveStats> = None;
        for _ in 0..params.benchmark_solves.max(1) {
            let (_, st) = if mixed {
                gmres_ir_solve(&c, &prob, &opts, &tl)
            } else {
                gmres_solve_f64(&c, &prob, &opts, &tl)
            };
            agg = Some(match agg {
                None => st,
                Some(mut a) => {
                    a.iters += st.iters;
                    a.motifs.merge(&st.motifs);
                    a
                }
            });
        }
        let mut st = agg.expect("at least one solve");
        st.overlap_efficiency = tl.overlap_efficiency();
        (st, t0.elapsed().as_secs_f64())
    });
    PhaseResult::from_rank_results(if mixed { "mxp" } else { "double" }, results)
}

/// Run one timed phase under a runtime precision policy: the problem
/// is assembled with exactly the policy's storage precisions and the
/// solver is GMRES-IR at the policy's compute/wire mapping. The
/// returned phase carries the measured per-motif bytes, which the
/// policy-aware machine model reconciles against.
pub fn run_policy_phase(
    params: &BenchmarkParams,
    variant: ImplVariant,
    ranks: usize,
    policy: &PrecisionPolicy,
) -> PhaseResult {
    let params = *params;
    let spec = spec_for(&params, ranks);
    let policy = policy.clone();
    let label = policy.name.clone();
    let results = run_spmd(ranks, move |c| {
        let prob = assemble_with_policy(&spec, c.rank(), &policy);
        let tl = Timeline::enabled();
        let opts = GmresOptions {
            restart: params.restart,
            max_iters: params.max_iters_per_solve,
            tol: 0.0,
            variant,
            pre_smooth: params.pre_smooth,
            post_smooth: params.post_smooth,
            precondition: true,
            ortho: crate::gmres::OrthoMethod::Cgs2,
            track_history: false,
        };
        let t0 = Instant::now();
        let mut agg: Option<SolveStats> = None;
        for _ in 0..params.benchmark_solves.max(1) {
            let (_, st) = gmres_ir_solve_policy(&c, &prob, &policy, &opts, &tl);
            agg = Some(match agg {
                None => st,
                Some(mut a) => {
                    a.iters += st.iters;
                    a.motifs.merge(&st.motifs);
                    a
                }
            });
        }
        let mut st = agg.expect("at least one solve");
        st.overlap_efficiency = tl.overlap_efficiency();
        (st, t0.elapsed().as_secs_f64())
    });
    PhaseResult::from_rank_results(&label, results)
}

/// Validation under a policy: double-precision GMRES to the target
/// (`n_d`), then policy-configured GMRES-IR chasing the same residual
/// (`n_ir`); the ratio is the policy's iteration penalty.
///
/// Panics if the policy solver fails to converge — use
/// [`validate_policy_checked`] for policies that may legitimately break
/// down (the standalone-fp16 stress configuration).
pub fn validate_policy(
    params: &BenchmarkParams,
    variant: ImplVariant,
    ranks: usize,
    policy: &PrecisionPolicy,
) -> ValidationResult {
    let pv = validate_policy_checked(params, variant, ranks, policy);
    assert!(pv.converged, "policy GMRES-IR failed to reach {:.3e}", pv.result.achieved_relres);
    pv.result
}

/// Outcome of [`validate_policy_checked`]: the validation numbers plus
/// an honest convergence verdict.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PolicyValidation {
    /// The validation numbers. On breakdown, `nir` is the iteration
    /// count at which the policy solver gave up and `ratio`/`penalty`
    /// are not meaningful as a rating.
    pub result: ValidationResult,
    /// Did the policy solver actually reach the double solve's target?
    pub converged: bool,
    /// Relative residual the policy solver ended at (NaN on an fp16
    /// overflow/underflow breakdown — never masked as success).
    pub ir_final_relres: f64,
}

/// [`validate_policy`] without the convergence assertion. Callers (the
/// campaign harness) must report non-converged cells as *unrated*
/// rather than quoting a GF/s number — extending the `dist_norm2`
/// honesty fix through the reporting layer.
pub fn validate_policy_checked(
    params: &BenchmarkParams,
    variant: ImplVariant,
    ranks: usize,
    policy: &PrecisionPolicy,
) -> PolicyValidation {
    let params = *params;
    let v_ranks = params.validation_ranks.min(ranks);
    let spec = spec_for(&params, v_ranks);
    let policy = policy.clone();
    let results = run_spmd(v_ranks, move |c| {
        let prob = assemble(&spec, c.rank());
        let prob_policy = assemble_with_policy(&spec, c.rank(), &policy);
        let tl = Timeline::disabled();
        let d_opts = GmresOptions {
            restart: params.restart,
            max_iters: params.validation_max_iters,
            tol: params.validation_tol,
            variant,
            pre_smooth: params.pre_smooth,
            post_smooth: params.post_smooth,
            precondition: true,
            ortho: crate::gmres::OrthoMethod::Cgs2,
            track_history: false,
        };
        let (_, st_d) = gmres_solve_f64(&c, &prob, &d_opts, &tl);
        let ir_opts =
            GmresOptions { max_iters: params.validation_max_iters.saturating_mul(4), ..d_opts };
        let (_, st_ir) = gmres_ir_solve_policy(&c, &prob_policy, &policy, &ir_opts, &tl);
        (st_d.iters, st_d.final_relres, st_ir.iters, st_ir.converged, st_ir.final_relres)
    });
    let (nd, achieved, nir, ir_ok, ir_relres) = results[0];
    let ratio = nd as f64 / nir.max(1) as f64;
    PolicyValidation {
        result: ValidationResult {
            mode: ValidationMode::Standard,
            ranks: v_ranks,
            nd,
            nir,
            achieved_relres: achieved,
            ratio,
            penalty: ratio.min(1.0),
        },
        converged: ir_ok,
        ir_final_relres: ir_relres,
    }
}

/// Run the complete benchmark: validation, mxp phase, double phase.
pub fn run_benchmark(
    params: &BenchmarkParams,
    variant: ImplVariant,
    ranks: usize,
    mode: ValidationMode,
) -> BenchmarkReport {
    let validation = validate(params, variant, ranks, mode);
    let mxp = run_phase(params, variant, ranks, true);
    let double = run_phase(params, variant, ranks, false);
    let penalized_gflops = mxp.gflops_raw * validation.penalty;
    let speedup = if double.gflops_raw > 0.0 { penalized_gflops / double.gflops_raw } else { 0.0 };
    BenchmarkReport {
        params: *params,
        variant,
        ranks,
        validation,
        mxp,
        double,
        penalized_gflops,
        speedup,
        simd: simd_descriptor(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_params() -> BenchmarkParams {
        BenchmarkParams {
            local_dims: (8, 8, 8),
            mg_levels: 2,
            max_iters_per_solve: 20,
            validation_max_iters: 400,
            benchmark_solves: 1,
            ..Default::default()
        }
    }

    #[test]
    fn standard_validation_penalty_band() {
        let v = validate(&tiny_params(), ImplVariant::Optimized, 2, ValidationMode::Standard);
        assert!(v.nd > 0 && v.nir > 0);
        // Paper's band: the mixed solver needs about the same iterations
        // (Table 2 ratios 0.958–1.067; 1-node text ratio 0.968).
        assert!(
            (0.7..=1.3).contains(&v.ratio),
            "ratio {} = {}/{} far outside the paper's band",
            v.ratio,
            v.nd,
            v.nir
        );
        assert!(v.penalty <= 1.0);
        assert!((v.penalty - v.ratio.min(1.0)).abs() < 1e-15);
        assert!(v.achieved_relres <= 1e-9);
    }

    #[test]
    fn fullscale_validation_runs_all_ranks() {
        let v = validate(&tiny_params(), ImplVariant::Optimized, 4, ValidationMode::FullScale);
        assert_eq!(v.ranks, 4);
        assert!(v.nd > 0 && v.nir > 0);
        assert!((0.7..=1.3).contains(&v.ratio));
    }

    #[test]
    fn fullscale_respects_iteration_cap() {
        // With a tiny cap the double solve stops early and the achieved
        // residual becomes the IR target (the paper's large-scale case).
        let params = BenchmarkParams { validation_max_iters: 5, ..tiny_params() };
        let v = validate(&params, ImplVariant::Optimized, 2, ValidationMode::FullScale);
        assert!(v.nd <= 5 + params.restart, "double capped near 5, got {}", v.nd);
        assert!(v.achieved_relres > 1e-9, "must not have reached 1e-9 in 5 iterations");
    }

    #[test]
    fn phase_runs_fixed_iterations() {
        let params = tiny_params();
        let phase = run_phase(&params, ImplVariant::Optimized, 2, true);
        assert_eq!(phase.iters, params.max_iters_per_solve);
        assert!(phase.gflops_raw > 0.0);
        assert!(phase.wall_time > 0.0);
        assert_eq!(phase.label, "mxp");
        // Two thread-ranks exchange halos, so the phase must carry a
        // measured overlap efficiency in [0, 1].
        let eff = phase.overlap_efficiency.expect("P=2 records overlaps");
        assert!((0.0..=1.0).contains(&eff), "overlap efficiency {eff}");
    }

    #[test]
    fn policy_breakdown_reports_unconverged_not_panic() {
        // The standalone-fp16 stress policy may break down; the checked
        // validation must report that honestly instead of asserting.
        let params = BenchmarkParams { validation_max_iters: 30, ..tiny_params() };
        let pv = validate_policy_checked(
            &params,
            ImplVariant::Optimized,
            2,
            &PrecisionPolicy::stress_f16(),
        );
        // Either outcome is legitimate at this size; what is pinned is
        // that the verdict is explicit and the numbers are present.
        assert!(pv.result.nd > 0);
        assert!(pv.result.nir > 0);
        if !pv.converged {
            assert!(
                pv.ir_final_relres.is_nan() || pv.ir_final_relres > params.validation_tol,
                "non-convergence must not carry a converged-looking residual: {}",
                pv.ir_final_relres
            );
        }
    }

    #[test]
    fn full_benchmark_report() {
        let params = tiny_params();
        let report = run_benchmark(&params, ImplVariant::Optimized, 2, ValidationMode::Standard);
        assert!(report.penalized_gflops > 0.0);
        assert!(report.penalized_gflops <= report.mxp.gflops_raw * (1.0 + 1e-12));
        assert!(report.speedup > 0.0);
        let text = report.to_text();
        assert!(text.contains("penalized mxp"));
        assert!(text.contains("speedup"));
        // Per-motif speedups exist for the big motifs.
        let sp = report.motif_speedups();
        assert!(!sp.is_empty());
        // JSON serialization round-trips.
        let json = serde_json::to_string(&report).unwrap();
        let back: BenchmarkReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.ranks, report.ranks);
    }
}
