//! Distributed assembly of the benchmark problem and its multigrid
//! hierarchy.
//!
//! Each rank assembles its block of rows of the 27-point operator
//! (diagonal 26, off-diagonals −1; §3), with ghost columns numbered by
//! the geometric halo plan, on every level of the 4-level hierarchy.
//! A [`Level`] carries everything both implementation variants need:
//! the operator in CSR (reference) and ELL (optimized) storage at both
//! precisions, the JPL coloring with its interior/boundary split for
//! overlap, the level schedule and triangular split of the reference
//! Gauss–Seidel, and the injection map to the next coarser level.

use crate::config::BenchmarkParams;
use crate::policy::PrecisionPolicy;
use hpgmxp_comm::HaloExchange;
use hpgmxp_geometry::{GridHierarchy, HaloPlan, LocalGrid, ProcGrid, Stencil27, STENCIL_OFFSETS};
use hpgmxp_sparse::csr::{CsrBuilder, CsrMatrix};
use hpgmxp_sparse::gauss_seidel::split_lower_upper;
use hpgmxp_sparse::{jpl_coloring, Coloring, EllMatrix, Half, LevelSchedule, PrecKind, Scalar};

/// Global description of a benchmark problem instance.
#[derive(Debug, Clone, Copy)]
pub struct ProblemSpec {
    /// Local mesh points per rank in each dimension.
    pub local: (u32, u32, u32),
    /// Processor grid.
    pub procs: ProcGrid,
    /// Stencil coefficients (symmetric by default).
    pub stencil: Stencil27,
    /// Multigrid levels (benchmark: 4).
    pub mg_levels: usize,
    /// Seed for the JPL coloring weights.
    pub seed: u64,
}

impl ProblemSpec {
    /// Spec from benchmark parameters and a rank count.
    pub fn from_params(params: &BenchmarkParams, nranks: usize) -> Self {
        ProblemSpec {
            local: params.local_dims,
            procs: ProcGrid::factor(nranks as u32),
            stencil: Stencil27::symmetric(),
            mg_levels: params.mg_levels,
            seed: 0xC0FFEE,
        }
    }

    /// Global row count of the fine-level problem.
    pub fn global_rows(&self) -> u64 {
        self.local.0 as u64 * self.local.1 as u64 * self.local.2 as u64 * self.procs.size() as u64
    }
}

/// The reference implementation's triangular data for Gauss–Seidel.
#[derive(Debug, Clone)]
pub struct RefPath<S> {
    /// `D + L` factor.
    pub lower: CsrMatrix<S>,
    /// Strictly upper factor (with structural zero diagonal).
    pub upper: CsrMatrix<S>,
}

/// One level's operator data at one *storage* precision: both formats
/// plus the reference-path triangular factors. Under the precision
/// policy a level materializes only the sets its policy needs (storage
/// precision per level, plus `f64` on the fine level for the outer
/// residual); the split kernels widen stored values on load, so one
/// set serves every compute precision.
#[derive(Debug, Clone)]
pub struct MatrixSet<S> {
    /// CSR form (reference format).
    pub csr: CsrMatrix<S>,
    /// ELL form (optimized format).
    pub ell: EllMatrix<S>,
    /// Reference-path `(D+L, U)` factors.
    pub refpath: RefPath<S>,
}

impl<S: Scalar> MatrixSet<S> {
    fn build(csr64: &CsrMatrix<f64>) -> Self {
        let csr: CsrMatrix<S> = csr64.convert();
        let ell = EllMatrix::from_csr(&csr);
        let (lower, upper) = split_lower_upper(&csr);
        MatrixSet { csr, ell, refpath: RefPath { lower, upper } }
    }
}

/// The per-precision matrix sets one level holds (absent = the policy
/// this problem was assembled under never touches that precision on
/// this level).
#[derive(Debug, Clone, Default)]
pub struct LevelStore {
    /// Double-precision set.
    pub m64: Option<MatrixSet<f64>>,
    /// Single-precision set.
    pub m32: Option<MatrixSet<f32>>,
    /// Half-precision set.
    pub m16: Option<MatrixSet<Half>>,
}

impl LevelStore {
    /// Which kinds are materialized.
    pub fn kinds(&self) -> Vec<PrecKind> {
        let mut out = Vec::new();
        if self.m64.is_some() {
            out.push(PrecKind::F64);
        }
        if self.m32.is_some() {
            out.push(PrecKind::F32);
        }
        if self.m16.is_some() {
            out.push(PrecKind::F16);
        }
        out
    }

    /// Resident bytes of all materialized matrix values (the capacity
    /// cost a policy pays; indices excluded — they are shared-size).
    pub fn value_bytes(&self) -> usize {
        let mut b = 0;
        if let Some(m) = &self.m64 {
            b += m.ell.value_bytes() + m.csr.value_bytes();
        }
        if let Some(m) = &self.m32 {
            b += m.ell.value_bytes() + m.csr.value_bytes();
        }
        if let Some(m) = &self.m16 {
            b += m.ell.value_bytes() + m.csr.value_bytes();
        }
        b
    }
}

/// One multigrid level of one rank, fully assembled.
#[derive(Debug, Clone)]
pub struct Level {
    /// The level's local grid.
    pub grid: LocalGrid,
    /// Depth in the multigrid hierarchy (0 = finest); the index the
    /// precision policy's per-level storage axis keys on.
    pub depth: usize,
    /// Operator data per materialized storage precision.
    pub store: LevelStore,
    /// Stored nonzeros of the local operator (precision-independent).
    nnz_stored: usize,
    /// Fine-matrix nonzeros in coarse-collocated rows (fused
    /// restriction work; 0 on the coarsest level).
    nnz_coarse: usize,
    /// JPL multicoloring of the local graph.
    pub coloring: Coloring,
    /// Per color: rows whose stencil touches no ghost (safe during
    /// communication).
    pub color_interior: Vec<Vec<u32>>,
    /// Per color: rows that read ghost values (must wait for the halo).
    pub color_boundary: Vec<Vec<u32>>,
    /// All interior rows (for overlapped SpMV).
    pub interior_rows: Vec<u32>,
    /// All boundary rows.
    pub boundary_rows: Vec<u32>,
    /// Level schedule of the lower-triangular sweep (reference GS).
    pub schedule: LevelSchedule,
    /// Halo exchange executor for this level.
    pub halo: HaloExchange,
    /// Injection map to the next coarser level (`None` on the coarsest).
    pub c2f: Option<hpgmxp_geometry::CoarseMap>,
    /// Coarse rows whose collocated fine row is interior (fused
    /// restriction may compute them during the halo exchange).
    pub restrict_interior: Vec<u32>,
    /// Coarse rows whose collocated fine row reads ghosts.
    pub restrict_boundary: Vec<u32>,
}

impl Level {
    /// Owned rows on this level.
    pub fn n_local(&self) -> usize {
        self.grid.total_points()
    }

    /// Length distributed vectors need on this level (owned + ghosts).
    pub fn vec_len(&self) -> usize {
        self.n_local() + self.halo.num_ghosts()
    }

    /// Stored nonzeros of the local operator.
    pub fn nnz(&self) -> usize {
        self.nnz_stored
    }

    /// Fine-matrix nonzeros in the rows collocated with coarse points
    /// (the work of the fused restriction).
    pub fn nnz_coarse_rows(&self) -> usize {
        self.nnz_coarse
    }

    fn missing(&self, kind: PrecKind) -> ! {
        panic!(
            "level {} was assembled without {} matrices (materialized: {:?}); \
             assemble with a policy whose storage covers this level's kernels",
            self.depth,
            kind.name(),
            self.store.kinds()
        )
    }

    /// Double-precision matrix set (panics if not materialized).
    pub fn set64(&self) -> &MatrixSet<f64> {
        self.store.m64.as_ref().unwrap_or_else(|| self.missing(PrecKind::F64))
    }

    /// Single-precision matrix set (panics if not materialized).
    pub fn set32(&self) -> &MatrixSet<f32> {
        self.store.m32.as_ref().unwrap_or_else(|| self.missing(PrecKind::F32))
    }

    /// Half-precision matrix set (panics if not materialized).
    pub fn set16(&self) -> &MatrixSet<Half> {
        self.store.m16.as_ref().unwrap_or_else(|| self.missing(PrecKind::F16))
    }

    /// Operator, CSR double (reference format / outer residuals).
    pub fn csr64(&self) -> &CsrMatrix<f64> {
        &self.set64().csr
    }

    /// Operator, ELL double (optimized format).
    pub fn ell64(&self) -> &EllMatrix<f64> {
        &self.set64().ell
    }

    /// Operator, CSR single.
    pub fn csr32(&self) -> &CsrMatrix<f32> {
        &self.set32().csr
    }

    /// Operator, ELL single.
    pub fn ell32(&self) -> &EllMatrix<f32> {
        &self.set32().ell
    }

    /// Operator, CSR half.
    pub fn csr16(&self) -> &CsrMatrix<Half> {
        &self.set16().csr
    }

    /// Operator, ELL half.
    pub fn ell16(&self) -> &EllMatrix<Half> {
        &self.set16().ell
    }

    /// Reference-path factors, double.
    pub fn ref64(&self) -> &RefPath<f64> {
        &self.set64().refpath
    }

    /// Reference-path factors, single.
    pub fn ref32(&self) -> &RefPath<f32> {
        &self.set32().refpath
    }

    /// Reference-path factors, half.
    pub fn ref16(&self) -> &RefPath<Half> {
        &self.set16().refpath
    }
}

/// A rank's fully assembled benchmark problem.
#[derive(Debug, Clone)]
pub struct LocalProblem {
    /// The global problem description.
    pub spec: ProblemSpec,
    /// Levels, finest first.
    pub levels: Vec<Level>,
    /// Fine-level right-hand side (owned entries only), `b = A·1`.
    pub b: Vec<f64>,
    /// The exact solution (all ones), for error checks.
    pub x_exact: Vec<f64>,
}

impl LocalProblem {
    /// Fine-level local row count.
    pub fn n_local(&self) -> usize {
        self.levels[0].n_local()
    }

    /// Fine-level vector length including ghosts.
    pub fn vec_len(&self) -> usize {
        self.levels[0].vec_len()
    }
}

/// Assemble one level's local operator on `grid` with ghost columns
/// numbered by `plan`.
fn assemble_matrix(grid: &LocalGrid, plan: &HaloPlan, stencil: &Stencil27) -> CsrMatrix<f64> {
    let n = grid.total_points();
    let global = grid.global();
    let mut b = CsrBuilder::new(n, n + plan.num_ghosts, n * 27);
    let mut entries: Vec<(u32, f64)> = Vec::with_capacity(27);
    for iz in 0..grid.nz {
        for iy in 0..grid.ny {
            for ix in 0..grid.nx {
                entries.clear();
                let (gx, gy, gz) = grid.to_global(ix, iy, iz);
                for &(dx, dy, dz) in STENCIL_OFFSETS.iter() {
                    let (ngx, ngy, ngz) =
                        (gx as i64 + dx as i64, gy as i64 + dy as i64, gz as i64 + dz as i64);
                    if !global.contains(ngx, ngy, ngz) {
                        continue;
                    }
                    let (ex, ey, ez) =
                        (ix as i64 + dx as i64, iy as i64 + dy as i64, iz as i64 + dz as i64);
                    let col = if ex >= 0
                        && ey >= 0
                        && ez >= 0
                        && ex < grid.nx as i64
                        && ey < grid.ny as i64
                        && ez < grid.nz as i64
                    {
                        grid.index(ex as u32, ey as u32, ez as u32) as u32
                    } else {
                        let g = plan
                            .ghost_index(ex, ey, ez)
                            .expect("in-domain off-rank point must have a ghost slot");
                        (n + g) as u32
                    };
                    entries.push((col, stencil.coefficient(dx, dy, dz)));
                }
                b.push_row(entries.iter().copied());
            }
        }
    }
    b.finish()
}

/// Split row lists of each color into interior/boundary sub-lists.
fn split_colors(
    coloring: &Coloring,
    plan: &HaloPlan,
    grid: &LocalGrid,
) -> (Vec<Vec<u32>>, Vec<Vec<u32>>) {
    let mut interior = vec![Vec::new(); coloring.num_colors as usize];
    let mut boundary = vec![Vec::new(); coloring.num_colors as usize];
    for (c, rows) in coloring.rows_of.iter().enumerate() {
        for &r in rows {
            let (ix, iy, iz) = grid.coords(r as usize);
            if plan.is_boundary_row(ix, iy, iz) {
                boundary[c].push(r);
            } else {
                interior[c].push(r);
            }
        }
    }
    (interior, boundary)
}

/// Assemble the complete local problem of `rank`, materializing every
/// precision on every level (the compatibility kitchen-sink used by
/// tests, examples, and ad-hoc experiments that mix precisions
/// freely). The benchmark and ablation paths use
/// [`assemble_with_policy`], which builds each level's matrices once
/// in their policy precision instead.
pub fn assemble(spec: &ProblemSpec, rank: usize) -> LocalProblem {
    assemble_storing(spec, rank, |_| vec![PrecKind::F64, PrecKind::F32, PrecKind::F16], |_| 8)
}

/// Assemble only what `policy` needs: per level, the policy's storage
/// precision for that depth, plus `f64` on the fine level (the GMRES-IR
/// outer residual is always double — that invariant is what recovers
/// 1e-9 under every policy). Halo staging is sized from the policy's
/// wire scalar (and the widest exchange the level will actually run)
/// instead of unconditionally at 8 bytes.
pub fn assemble_with_policy(
    spec: &ProblemSpec,
    rank: usize,
    policy: &PrecisionPolicy,
) -> LocalProblem {
    assemble_storing(
        spec,
        rank,
        |depth| {
            let mut kinds = vec![policy.storage_at(depth)];
            if depth == 0 && !kinds.contains(&PrecKind::F64) {
                kinds.push(PrecKind::F64);
            }
            kinds
        },
        // Halo staging capacity: the widest wire format each level's
        // exchanges use — f64 on the fine level (the outer residual
        // exchanges at native f64 wire), the policy wire / compute
        // width on the coarser, inner-solve-only levels.
        |depth| {
            if depth == 0 {
                8
            } else {
                policy.wire.bytes().max(policy.compute.bytes())
            }
        },
    )
}

/// Shared assembly skeleton: `kinds_of(depth)` chooses which storage
/// precisions to materialize on each level; `staging_of(depth)` the
/// halo staging width in bytes.
fn assemble_storing(
    spec: &ProblemSpec,
    rank: usize,
    kinds_of: impl Fn(usize) -> Vec<PrecKind>,
    staging_of: impl Fn(usize) -> usize,
) -> LocalProblem {
    let fine_grid = LocalGrid::new(spec.local, spec.procs, rank as u32);
    let hierarchy = GridHierarchy::build(&fine_grid, spec.mg_levels);
    let mut levels = Vec::with_capacity(spec.mg_levels);

    for (l, grid) in hierarchy.grids.iter().enumerate() {
        let plan = HaloPlan::build(grid);
        let csr64 = assemble_matrix(grid, &plan, &spec.stencil);
        let coloring = jpl_coloring(&csr64, spec.seed.wrapping_add(l as u64));
        debug_assert!(coloring.verify(&csr64));
        let (color_interior, color_boundary) = split_colors(&coloring, &plan, grid);
        let (interior_rows, boundary_rows) = plan.split_rows();
        let schedule = LevelSchedule::build(&csr64);
        let c2f = if l + 1 < spec.mg_levels { Some(hierarchy.maps[l].clone()) } else { None };

        // Coarse-row overlap split for the fused restriction, plus the
        // fused-restriction work count (precision-independent).
        let (mut restrict_interior, mut restrict_boundary) = (Vec::new(), Vec::new());
        let mut nnz_coarse = 0usize;
        if let Some(map) = &c2f {
            for (ci, &f) in map.c2f.iter().enumerate() {
                let (ix, iy, iz) = grid.coords(f as usize);
                if plan.is_boundary_row(ix, iy, iz) {
                    restrict_boundary.push(ci as u32);
                } else {
                    restrict_interior.push(ci as u32);
                }
                nnz_coarse += csr64.row(f as usize).0.len();
            }
        }

        // Materialize exactly the storage precisions this level needs.
        let mut store = LevelStore::default();
        for kind in kinds_of(l) {
            match kind {
                PrecKind::F64 if store.m64.is_none() => {
                    store.m64 = Some(MatrixSet::build(&csr64));
                }
                PrecKind::F32 if store.m32.is_none() => {
                    store.m32 = Some(MatrixSet::build(&csr64));
                }
                PrecKind::F16 if store.m16.is_none() => {
                    store.m16 = Some(MatrixSet::build(&csr64));
                }
                _ => {}
            }
        }

        levels.push(Level {
            grid: *grid,
            depth: l,
            nnz_stored: csr64.nnz(),
            nnz_coarse,
            store,
            coloring,
            color_interior,
            color_boundary,
            interior_rows,
            boundary_rows,
            schedule,
            halo: HaloExchange::new_sized(plan, staging_of(l)),
            c2f,
            restrict_interior,
            restrict_boundary,
        });
    }

    // b = A·1 — with the exact solution all-ones, ghost values are also
    // ones, so no exchange is needed to form the right-hand side. The
    // fine level always carries f64 (enforced for policies above); the
    // kitchen-sink path materializes it unconditionally.
    let fine = &levels[0];
    let ones = vec![1.0f64; fine.vec_len()];
    let mut b = vec![0.0f64; fine.n_local()];
    fine.csr64().spmv(&ones, &mut b);
    let x_exact = vec![1.0f64; fine.n_local()];

    LocalProblem { spec: *spec, levels, b, x_exact }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec_1rank(n: u32, levels: usize) -> ProblemSpec {
        ProblemSpec {
            local: (n, n, n),
            procs: ProcGrid::new(1, 1, 1),
            stencil: Stencil27::symmetric(),
            mg_levels: levels,
            seed: 1,
        }
    }

    #[test]
    fn single_rank_interior_row_has_27_entries() {
        let p = assemble(&spec_1rank(8, 1), 0);
        let a = &p.levels[0].csr64();
        // Center point of the 8³ box is interior.
        let lg = p.levels[0].grid;
        let center = lg.index(4, 4, 4);
        let (cols, vals) = a.row(center);
        assert_eq!(cols.len(), 27);
        assert_eq!(a.diag(center), 26.0);
        let sum: f64 = vals.iter().sum();
        // Interior row sums to 26 - 26 = 0 (weak diagonal dominance).
        assert!(sum.abs() < 1e-12);
    }

    #[test]
    fn corner_row_has_8_entries() {
        let p = assemble(&spec_1rank(8, 1), 0);
        let a = &p.levels[0].csr64();
        let (cols, _) = a.row(0);
        assert_eq!(cols.len(), 8);
        assert_eq!(a.diag(0), 26.0);
    }

    #[test]
    fn rhs_is_row_sums() {
        let p = assemble(&spec_1rank(4, 1), 0);
        let a = &p.levels[0].csr64();
        for i in 0..a.nrows() {
            let (_, vals) = a.row(i);
            let sum: f64 = vals.iter().sum();
            assert!((p.b[i] - sum).abs() < 1e-12);
        }
        // Corner rows: 26 - 7 = 19.
        assert!((p.b[0] - 19.0).abs() < 1e-12);
    }

    #[test]
    fn hierarchy_has_expected_sizes() {
        let p = assemble(&spec_1rank(16, 4), 0);
        let sizes: Vec<usize> = p.levels.iter().map(|l| l.n_local()).collect();
        assert_eq!(sizes, vec![4096, 512, 64, 8]);
        assert!(p.levels[0].c2f.is_some());
        assert!(p.levels[3].c2f.is_none());
    }

    #[test]
    fn coloring_is_valid_with_8_colors_on_27pt() {
        let p = assemble(&spec_1rank(8, 1), 0);
        let l = &p.levels[0];
        assert!(l.coloring.verify(l.csr64()));
        // The 27-point stencil needs at least 8 colors (2×2×2 parity).
        // JPL with random weights typically lands between 8 and ~2x the
        // chromatic number on this dense stencil graph.
        assert!(
            l.coloring.num_colors >= 8 && l.coloring.num_colors <= 20,
            "got {}",
            l.coloring.num_colors
        );
        // Greedy in lexicographic order achieves the optimum, 8.
        let greedy = hpgmxp_sparse::greedy_coloring(l.csr64());
        assert_eq!(greedy.num_colors, 8);
    }

    #[test]
    fn distributed_assembly_has_ghosts() {
        let spec = ProblemSpec {
            local: (4, 4, 4),
            procs: ProcGrid::new(2, 1, 1),
            stencil: Stencil27::symmetric(),
            mg_levels: 1,
            seed: 1,
        };
        let p0 = assemble(&spec, 0);
        let l = &p0.levels[0];
        assert_eq!(l.halo.num_ghosts(), 16);
        assert_eq!(l.csr64().ncols(), 64 + 16);
        // A boundary row on the +x face must reference a ghost column.
        let row = l.grid.index(3, 1, 1);
        let (cols, _) = l.csr64().row(row);
        assert!(cols.iter().any(|&c| c as usize >= 64));
        // Interior/boundary row split is consistent.
        assert_eq!(l.interior_rows.len() + l.boundary_rows.len(), 64);
        assert!(l.boundary_rows.contains(&(row as u32)));
    }

    #[test]
    fn color_split_partitions_each_class() {
        let spec = ProblemSpec {
            local: (4, 4, 4),
            procs: ProcGrid::new(2, 2, 1),
            stencil: Stencil27::symmetric(),
            mg_levels: 1,
            seed: 3,
        };
        let p = assemble(&spec, 3);
        let l = &p.levels[0];
        for c in 0..l.coloring.num_colors as usize {
            let class = &l.coloring.rows_of[c];
            assert_eq!(l.color_interior[c].len() + l.color_boundary[c].len(), class.len());
        }
    }

    #[test]
    fn global_row_consistency_across_ranks() {
        // The two ranks of a 2x1x1 grid assemble complementary halves:
        // their total nnz must equal the serial assembly's nnz.
        let spec2 = ProblemSpec {
            local: (4, 4, 4),
            procs: ProcGrid::new(2, 1, 1),
            stencil: Stencil27::symmetric(),
            mg_levels: 1,
            seed: 1,
        };
        let serial = ProblemSpec {
            local: (8, 4, 4),
            procs: ProcGrid::new(1, 1, 1),
            stencil: Stencil27::symmetric(),
            mg_levels: 1,
            seed: 1,
        };
        let nnz2: usize = (0..2).map(|r| assemble(&spec2, r).levels[0].nnz()).sum();
        let nnz1 = assemble(&serial, 0).levels[0].nnz();
        assert_eq!(nnz2, nnz1);
    }

    #[test]
    fn nonsymmetric_variant_assembles() {
        let spec = ProblemSpec {
            local: (4, 4, 4),
            procs: ProcGrid::new(1, 1, 1),
            stencil: Stencil27::nonsymmetric(0.5),
            mg_levels: 1,
            seed: 1,
        };
        let p = assemble(&spec, 0);
        let a = &p.levels[0].csr64();
        let d = a.to_dense();
        // Not symmetric...
        let mut asym = false;
        for (i, di) in d.iter().enumerate() {
            for (j, dj) in d.iter().enumerate() {
                if (di[j] - dj[i]).abs() > 1e-14 {
                    asym = true;
                }
            }
        }
        assert!(asym);
        // ...but still weakly diagonally dominant.
        for (i, di) in d.iter().enumerate() {
            let off: f64 = (0..a.nrows()).filter(|&j| j != i).map(|j| di[j].abs()).sum();
            assert!(off <= 26.0 + 1e-12);
        }
    }

    #[test]
    fn restrict_split_covers_coarse_rows() {
        let spec = ProblemSpec {
            local: (8, 8, 8),
            procs: ProcGrid::new(2, 1, 1),
            stencil: Stencil27::symmetric(),
            mg_levels: 2,
            seed: 1,
        };
        // Rank 0's inter-rank face is at ix = nx-1 (odd), which no
        // coarse point collocates with: all its coarse rows are
        // interior. Rank 1's face is at ix = 0 (even): its coarse rows
        // there must be classified as boundary.
        let p0 = assemble(&spec, 0);
        let l0 = &p0.levels[0];
        let n_coarse = p0.levels[1].n_local();
        assert_eq!(l0.restrict_interior.len() + l0.restrict_boundary.len(), n_coarse);
        assert!(l0.restrict_boundary.is_empty());

        let p1 = assemble(&spec, 1);
        let l1 = &p1.levels[0];
        assert_eq!(l1.restrict_interior.len() + l1.restrict_boundary.len(), n_coarse);
        assert_eq!(l1.restrict_boundary.len(), 16, "the 4x4 coarse face at ix=0");
    }

    #[test]
    fn nnz_coarse_rows_counts() {
        let p = assemble(&spec_1rank(8, 2), 0);
        let l = &p.levels[0];
        let expected: usize =
            l.c2f.as_ref().unwrap().c2f.iter().map(|&f| l.csr64().row(f as usize).0.len()).sum();
        assert_eq!(l.nnz_coarse_rows(), expected);
    }
}
