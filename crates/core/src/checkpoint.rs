//! Write-ahead checkpointing of GMRES-IR outer-iteration state.
//!
//! A checkpoint captures everything the outer loop carries across
//! restarts: the accumulated solution `x`, the residual history, and
//! the outer/inner iteration counters. The inner GMRES cycle rebuilds
//! all of its own state from `x` (the Krylov basis, Hessenberg, and
//! ghost entries are recomputed from scratch every cycle), so a job
//! restored at an outer-iteration boundary replays the remaining
//! residual history bit-identically.
//!
//! Commit protocol (two-phase, crash-consistent):
//! 1. every rank stages its state to `rank{R}.ckpt.tmp` and fsyncs,
//! 2. a barrier confirms every rank has staged,
//! 3. every rank renames the staged file over `rank{R}.ckpt`.
//!
//! A crash before the barrier leaves the previous generation intact on
//! every rank; a crash after it leaves a mixed generation, which
//! restore detects via an all-reduce over the per-rank generation
//! counters and resolves by starting cold. Files carry an `HPCK` magic,
//! a version byte, the writing rank/size, and a CRC32 trailer (same
//! polynomial as the wire frames) so torn or foreign files are
//! rejected rather than trusted.

use hpgmxp_comm::error::{CommError, CommErrorKind, CommResult};
use hpgmxp_comm::frame::crc32;
use hpgmxp_comm::{Comm, ReduceOp};
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

/// File format magic ("HPCK") and version.
const CKPT_MAGIC: u32 = u32::from_le_bytes(*b"HPCK");
const CKPT_VERSION: u32 = 1;

/// Where and how often to checkpoint, and whether to restore on start.
#[derive(Debug, Clone)]
pub struct CheckpointSpec {
    /// Directory holding one `rank{R}.ckpt` per rank.
    pub dir: PathBuf,
    /// Checkpoint every `interval` outer iterations (>= 1).
    pub interval: usize,
    /// Attempt to restore from `dir` before the first outer iteration.
    pub restore: bool,
}

impl CheckpointSpec {
    /// Checkpoint into `dir` every `interval` outer iterations.
    pub fn new(dir: impl Into<PathBuf>, interval: usize) -> Self {
        CheckpointSpec { dir: dir.into(), interval: interval.max(1), restore: false }
    }

    /// Also restore from the directory before solving.
    pub fn restoring(mut self) -> Self {
        self.restore = true;
        self
    }

    /// Build from the environment. `HPGMXP_CKPT_DIR` gates the feature
    /// (unset → `None`, checkpointing compiled out of the hot path);
    /// `HPGMXP_CKPT_INTERVAL` defaults to 1; `HPGMXP_RESTORE=1`
    /// requests restore.
    pub fn from_env() -> Option<Self> {
        let dir = std::env::var("HPGMXP_CKPT_DIR").ok()?;
        if dir.is_empty() {
            return None;
        }
        let interval = std::env::var("HPGMXP_CKPT_INTERVAL")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .unwrap_or(1);
        let restore = std::env::var("HPGMXP_RESTORE").map(|v| v == "1").unwrap_or(false);
        let mut spec = CheckpointSpec::new(dir, interval);
        spec.restore = restore;
        Some(spec)
    }

    fn committed_path(&self, rank: usize) -> PathBuf {
        self.dir.join(format!("rank{rank}.ckpt"))
    }

    fn staged_path(&self, rank: usize) -> PathBuf {
        self.dir.join(format!("rank{rank}.ckpt.tmp"))
    }
}

/// Outer-iteration state carried across a restart.
#[derive(Debug, Clone, PartialEq)]
pub struct OuterState {
    /// Total inner iterations accumulated so far.
    pub iters: usize,
    /// Outer iterations (restarts) completed so far; also the
    /// checkpoint generation counter.
    pub restarts: usize,
    /// Residual history entries recorded so far (one per outer
    /// iteration entered, when history tracking is on).
    pub history: Vec<f64>,
    /// The locally owned slice of the accumulated solution.
    pub x: Vec<f64>,
}

fn io_err(what: &str, path: &Path, e: std::io::Error) -> CommError {
    CommError::new(CommErrorKind::Protocol, None, format!("{what} {}: {e}", path.display()))
}

fn encode(state: &OuterState, rank: usize, size: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(40 + 8 * (state.history.len() + state.x.len()));
    out.extend_from_slice(&CKPT_MAGIC.to_le_bytes());
    out.extend_from_slice(&CKPT_VERSION.to_le_bytes());
    out.extend_from_slice(&(rank as u64).to_le_bytes());
    out.extend_from_slice(&(size as u64).to_le_bytes());
    out.extend_from_slice(&(state.iters as u64).to_le_bytes());
    out.extend_from_slice(&(state.restarts as u64).to_le_bytes());
    out.extend_from_slice(&(state.history.len() as u64).to_le_bytes());
    out.extend_from_slice(&(state.x.len() as u64).to_le_bytes());
    for v in &state.history {
        out.extend_from_slice(&v.to_le_bytes());
    }
    for v in &state.x {
        out.extend_from_slice(&v.to_le_bytes());
    }
    let crc = crc32(&out);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

fn decode(bytes: &[u8], rank: usize, size: usize) -> Result<OuterState, String> {
    if bytes.len() < 60 {
        return Err(format!("truncated checkpoint ({} bytes)", bytes.len()));
    }
    let (body, trailer) = bytes.split_at(bytes.len() - 4);
    let stored = u32::from_le_bytes(trailer.try_into().unwrap());
    let actual = crc32(body);
    if stored != actual {
        return Err(format!("CRC mismatch (stored {stored:#010x}, computed {actual:#010x})"));
    }
    let mut off = 0usize;
    let mut take_u64 = |what: &str| -> Result<u64, String> {
        let end = off + 8;
        if end > body.len() {
            return Err(format!("truncated checkpoint reading {what}"));
        }
        let v = u64::from_le_bytes(body[off..end].try_into().unwrap());
        off = end;
        Ok(v)
    };
    let magic = take_u64("header")?;
    let (magic, version) = ((magic & 0xffff_ffff) as u32, (magic >> 32) as u32);
    if magic != CKPT_MAGIC {
        return Err(format!("bad magic {magic:#010x}"));
    }
    if version != CKPT_VERSION {
        return Err(format!("unsupported checkpoint version {version}"));
    }
    let file_rank = take_u64("rank")?;
    let file_size = take_u64("size")?;
    if file_rank as usize != rank || file_size as usize != size {
        return Err(format!(
            "checkpoint written by rank {file_rank}/{file_size}, loaded as rank {rank}/{size}"
        ));
    }
    let iters = take_u64("iters")? as usize;
    let restarts = take_u64("restarts")? as usize;
    let nhist = take_u64("history length")? as usize;
    let nx = take_u64("x length")? as usize;
    if body.len() != 56 + 8 * (nhist + nx) {
        return Err(format!(
            "length mismatch: {} bytes for {nhist} history + {nx} solution entries",
            bytes.len()
        ));
    }
    let mut take_f64s = |count: usize| -> Vec<f64> {
        (0..count)
            .map(|_| {
                let v = f64::from_le_bytes(body[off..off + 8].try_into().unwrap());
                off += 8;
                v
            })
            .collect()
    };
    let history = take_f64s(nhist);
    let x = take_f64s(nx);
    Ok(OuterState { iters, restarts, history, x })
}

/// Stage this rank's state, barrier, then atomically commit. Returns a
/// typed error if staging fails or a peer dies inside the barrier; the
/// previously committed generation is untouched in either case.
pub fn stage_and_commit<C: Comm>(
    comm: &C,
    spec: &CheckpointSpec,
    state: &OuterState,
) -> CommResult<()> {
    let rank = comm.rank();
    fs::create_dir_all(&spec.dir).map_err(|e| io_err("cannot create", &spec.dir, e))?;
    let staged = spec.staged_path(rank);
    let bytes = encode(state, rank, comm.size());
    {
        let mut sp = hpgmxp_trace::span("ckpt stage", hpgmxp_trace::Lane::Ckpt);
        sp.set_arg(bytes.len() as u64);
        let mut f = fs::File::create(&staged).map_err(|e| io_err("cannot stage", &staged, e))?;
        f.write_all(&bytes).map_err(|e| io_err("cannot write", &staged, e))?;
        f.sync_all().map_err(|e| io_err("cannot sync", &staged, e))?;
    }
    // Every rank has durably staged before anyone overwrites the
    // previous generation.
    comm.barrier_checked()?;
    {
        let _sp = hpgmxp_trace::span("ckpt commit", hpgmxp_trace::Lane::Ckpt);
        let committed = spec.committed_path(rank);
        fs::rename(&staged, &committed).map_err(|e| io_err("cannot commit", &committed, e))?;
    }
    hpgmxp_trace::counter!("ckpt.commits").inc();
    hpgmxp_trace::counter!("ckpt.bytes_staged").add(bytes.len() as u64);
    Ok(())
}

/// Try to restore. Returns `Ok(None)` (cold start everywhere) when any
/// rank lacks a readable checkpoint, and a typed error when ranks hold
/// different generations — a torn commit that cannot be replayed.
pub fn restore<C: Comm>(
    comm: &C,
    spec: &CheckpointSpec,
    expected_len: usize,
) -> CommResult<Option<OuterState>> {
    let rank = comm.rank();
    let _sp = hpgmxp_trace::span("ckpt restore", hpgmxp_trace::Lane::Ckpt);
    hpgmxp_trace::counter!("ckpt.restores").inc();
    let local = fs::read(spec.committed_path(rank))
        .ok()
        .and_then(|bytes| match decode(&bytes, rank, comm.size()) {
            Ok(state) if state.x.len() == expected_len => Some(state),
            Ok(state) => {
                eprintln!(
                    "hpgmxp: rank {rank}: ignoring checkpoint sized for {} rows (expected {expected_len})",
                    state.x.len()
                );
                None
            }
            Err(why) => {
                eprintln!("hpgmxp: rank {rank}: ignoring unusable checkpoint: {why}");
                None
            }
        });
    // Agree on a generation: -1 encodes "nothing usable here".
    let generation = local.as_ref().map(|s| s.restarts as f64).unwrap_or(-1.0);
    let lo = comm.allreduce_scalar_checked(generation, ReduceOp::Min)?;
    let hi = comm.allreduce_scalar_checked(generation, ReduceOp::Max)?;
    if lo < 0.0 {
        return Ok(None);
    }
    if lo != hi {
        return Err(CommError::new(
            CommErrorKind::Protocol,
            None,
            format!("checkpoint generations diverge across ranks (min {lo}, max {hi})"),
        ));
    }
    Ok(local)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpgmxp_comm::SelfComm;

    fn state() -> OuterState {
        OuterState {
            iters: 42,
            restarts: 3,
            history: vec![1.0, 0.5, 0.25, 0.125],
            x: (0..17).map(|i| (i as f64).sin()).collect(),
        }
    }

    #[test]
    fn encode_decode_roundtrip() {
        let s = state();
        let bytes = encode(&s, 2, 4);
        let back = decode(&bytes, 2, 4).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn crc_detects_corruption() {
        let mut bytes = encode(&state(), 0, 1);
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        let err = decode(&bytes, 0, 1).unwrap_err();
        assert!(err.contains("CRC"), "{err}");
    }

    #[test]
    fn rank_mismatch_rejected() {
        let bytes = encode(&state(), 1, 4);
        let err = decode(&bytes, 2, 4).unwrap_err();
        assert!(err.contains("rank 1/4"), "{err}");
    }

    #[test]
    fn truncation_rejected() {
        let bytes = encode(&state(), 0, 1);
        assert!(decode(&bytes[..bytes.len() - 9], 0, 1).is_err());
        assert!(decode(&bytes[..10], 0, 1).is_err());
    }

    #[test]
    fn commit_then_restore_single_rank() {
        let dir = std::env::temp_dir().join(format!("hpck-test-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let spec = CheckpointSpec::new(&dir, 1);
        let comm = SelfComm;
        let s = state();
        stage_and_commit(&comm, &spec, &s).unwrap();
        // Staged file was renamed away.
        assert!(!spec.staged_path(0).exists());
        let back = restore(&comm, &spec, s.x.len()).unwrap().unwrap();
        assert_eq!(back, s);
        // Wrong expected length → cold start, not a crash.
        assert!(restore(&comm, &spec, s.x.len() + 1).unwrap().is_none());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn restore_missing_dir_is_cold_start() {
        let spec = CheckpointSpec::new("/nonexistent/hpgmxp-ckpt", 1);
        assert!(restore(&SelfComm, &spec, 8).unwrap().is_none());
    }

    #[test]
    fn interval_clamped_to_one() {
        assert_eq!(CheckpointSpec::new("x", 0).interval, 1);
    }
}
