//! Preconditioned conjugate gradient — the HPCG baseline.
//!
//! Algorithm 1 of the paper: CG with one multigrid V-cycle (symmetric
//! Gauss–Seidel smoother, to keep the preconditioner SPD) per
//! iteration. The paper compares HPCG and HPG-MxP full-system numbers
//! (10.4 vs 17.23 PF on 9408 nodes); this solver lets the repository
//! reproduce that comparison and serves as the symmetric-case sanity
//! check for the shared multigrid and kernel infrastructure.

use crate::config::ImplVariant;
use crate::gmres::SolveStats;
use crate::mg::{apply_mg, MgWorkspace, SmootherKind};
use crate::motifs::{Motif, MotifStats};
use crate::ops::{axpy_op, dist_dot, dist_norm2, dist_spmv, OpCtx};
use crate::problem::LocalProblem;
use hpgmxp_comm::{Comm, Timeline};
use serde::{Deserialize, Serialize};

/// CG solver configuration.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct CgOptions {
    /// Iteration cap.
    pub max_iters: usize,
    /// Relative residual tolerance.
    pub tol: f64,
    /// Implementation variant for the shared kernels.
    pub variant: ImplVariant,
    /// Apply the multigrid preconditioner.
    pub precondition: bool,
    /// Record the residual history.
    pub track_history: bool,
}

impl Default for CgOptions {
    fn default() -> Self {
        CgOptions {
            max_iters: 500,
            tol: 1e-9,
            variant: ImplVariant::Optimized,
            precondition: true,
            track_history: false,
        }
    }
}

/// Solve the SPD system `A x = b` with preconditioned CG from a zero
/// initial guess. The operator must be symmetric (use the symmetric
/// benchmark stencil).
pub fn cg_solve<C: Comm>(
    comm: &C,
    prob: &LocalProblem,
    opts: &CgOptions,
    timeline: &Timeline,
) -> (Vec<f64>, SolveStats) {
    let ctx = OpCtx::new(comm, opts.variant, timeline);
    let mut stats = MotifStats::new();
    let levels = &prob.levels[..];
    let n = levels[0].n_local();

    let mut x = vec![0.0f64; n];
    let mut r = prob.b.clone();
    let mut z = vec![0.0f64; n];
    // p needs ghosts: it is the SpMV input.
    let mut p = vec![0.0f64; levels[0].vec_len()];
    let mut ap = vec![0.0f64; n];
    let mut ws: MgWorkspace<f64> = MgWorkspace::new(levels);

    let rho0 = dist_norm2(comm, &mut stats, Motif::Dot, &prob.b);
    let mut history = Vec::new();
    let mut rtz = 0.0f64;
    let mut iters = 0usize;
    let mut relres = 1.0f64;
    let mut converged = false;

    while iters < opts.max_iters {
        // z = M⁻¹ r (symmetric-GS multigrid keeps M SPD).
        if opts.precondition {
            apply_mg(&ctx, levels, &mut stats, &mut ws, 1, 1, SmootherKind::Symmetric, &r, &mut z);
        } else {
            z.copy_from_slice(&r);
        }

        let rtz_new = dist_dot(comm, &mut stats, Motif::Dot, &r, &z);
        if iters == 0 {
            p[..n].copy_from_slice(&z);
        } else {
            let beta = rtz_new / rtz;
            // p = beta p + z.
            let t0 = std::time::Instant::now();
            for i in 0..n {
                p[i] = beta * p[i] + z[i];
            }
            stats.record(Motif::Waxpby, t0.elapsed().as_secs_f64(), crate::flops::waxpby(n));
        }
        rtz = rtz_new;

        dist_spmv(&ctx, &levels[0], &mut stats, 0, &mut p, &mut ap);
        let pap = dist_dot(comm, &mut stats, Motif::Dot, &p[..n], &ap);
        assert!(pap > 0.0, "matrix must be SPD for CG (pAp = {pap})");
        let alpha = rtz / pap;

        axpy_op(&mut stats, alpha, &p[..n], &mut x);
        axpy_op(&mut stats, -alpha, &ap, &mut r);
        iters += 1;

        let rho = dist_norm2(comm, &mut stats, Motif::Dot, &r);
        relres = if rho0 > 0.0 { rho / rho0 } else { 0.0 };
        if opts.track_history {
            history.push(relres);
        }
        if relres < opts.tol {
            converged = true;
            break;
        }
    }

    (
        x,
        SolveStats {
            iters,
            restarts: 0,
            converged,
            final_relres: relres,
            history,
            motifs: stats,
            overlap_efficiency: timeline.overlap_efficiency(),
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{assemble, ProblemSpec};
    use hpgmxp_comm::{run_spmd, SelfComm};
    use hpgmxp_geometry::{ProcGrid, Stencil27};

    fn spec(procs: ProcGrid, n: u32, levels: usize) -> ProblemSpec {
        ProblemSpec {
            local: (n, n, n),
            procs,
            stencil: Stencil27::symmetric(),
            mg_levels: levels,
            seed: 2,
        }
    }

    #[test]
    fn converges_on_spd_problem() {
        let prob = assemble(&spec(ProcGrid::new(1, 1, 1), 16, 4), 0);
        let tl = Timeline::disabled();
        let (x, st) = cg_solve(&SelfComm, &prob, &CgOptions::default(), &tl);
        assert!(st.converged, "relres {}", st.final_relres);
        for xi in &x {
            assert!((xi - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn multigrid_gives_mesh_independent_cg_convergence() {
        // Same invariant as for GMRES: MG keeps the count flat under
        // refinement; plain CG's count grows with the mesh diameter.
        let tl = Timeline::disabled();
        let with = CgOptions { tol: 1e-8, ..Default::default() };
        let without = CgOptions { precondition: false, max_iters: 2000, ..with };
        let iters = |n: u32, o: &CgOptions| {
            let prob = assemble(&spec(ProcGrid::new(1, 1, 1), n, 2), 0);
            let (_, st) = cg_solve(&SelfComm, &prob, o, &tl);
            assert!(st.converged);
            st.iters
        };
        let (mg8, mg32) = (iters(8, &with), iters(32, &with));
        let (no8, no32) = (iters(8, &without), iters(32, &without));
        // MG-CG beats plain CG by a healthy factor at 32³ (23 vs 48
        // measured) and its count grows more slowly under refinement.
        assert!((mg32 as f64) < no32 as f64 / 1.5, "{} vs {}", mg32, no32);
        let mg_growth = mg32 as f64 / mg8 as f64;
        let no_growth = no32 as f64 / no8 as f64;
        assert!(
            mg_growth < 0.9 * no_growth,
            "MG growth {:.2} vs plain growth {:.2} ({}→{} vs {}→{})",
            mg_growth,
            no_growth,
            mg8,
            mg32,
            no8,
            no32
        );
    }

    #[test]
    fn distributed_cg_converges() {
        let procs = ProcGrid::new(2, 1, 1);
        let results = run_spmd(2, move |c| {
            let prob = assemble(&spec(procs, 8, 3), c.rank());
            let tl = Timeline::disabled();
            let (_, st) = cg_solve(&c, &prob, &CgOptions::default(), &tl);
            st.converged
        });
        assert!(results.into_iter().all(|c| c));
    }

    #[test]
    fn residual_history_decreases_overall() {
        let prob = assemble(&spec(ProcGrid::new(1, 1, 1), 8, 2), 0);
        let tl = Timeline::disabled();
        let opts = CgOptions { track_history: true, ..Default::default() };
        let (_, st) = cg_solve(&SelfComm, &prob, &opts, &tl);
        assert!(st.history.last().unwrap() < &1e-9);
        // CG residuals may oscillate locally but must shrink by orders.
        assert!(st.history.first().unwrap() > st.history.last().unwrap());
    }
}
