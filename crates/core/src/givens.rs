//! Givens-rotation QR factorization of the GMRES Hessenberg matrix.
//!
//! GMRES minimizes `‖β e₁ − H̄ y‖₂` over the Krylov subspace; the
//! benchmark (Algorithm 3, lines 31–43) maintains a QR factorization of
//! the `(m+1) × m` Hessenberg matrix incrementally with one Givens
//! rotation per iteration. The rotations also update the transformed
//! right-hand side `t`, whose trailing entry `|t_{k+1}|` is the
//! residual norm of the least-squares problem — GMRES's free implicit
//! residual estimate. This small dense work runs redundantly on every
//! rank (on the CPU in the real benchmark) and is always in `f64`.

/// Incremental QR of the Hessenberg matrix via Givens rotations.
#[derive(Debug, Clone)]
pub struct GivensQr {
    m: usize,
    /// Column-major `(m+1) × m` upper-Hessenberg → triangular storage.
    h: Vec<f64>,
    /// Rotation cosines, one per completed column.
    cs: Vec<f64>,
    /// Rotation sines.
    sn: Vec<f64>,
    /// Transformed least-squares right-hand side, length `m+1`.
    t: Vec<f64>,
    /// Completed columns.
    k: usize,
}

impl GivensQr {
    /// Allocate for restart length `m`.
    pub fn new(m: usize) -> Self {
        GivensQr {
            m,
            h: vec![0.0; (m + 1) * m],
            cs: vec![0.0; m],
            sn: vec![0.0; m],
            t: vec![0.0; m + 1],
            k: 0,
        }
    }

    /// Start a cycle: `t = β e₁`, no columns.
    pub fn reset(&mut self, beta: f64) {
        self.h.fill(0.0);
        self.cs.fill(0.0);
        self.sn.fill(0.0);
        self.t.fill(0.0);
        self.t[0] = beta;
        self.k = 0;
    }

    /// Completed columns (inner iterations so far).
    pub fn cols(&self) -> usize {
        self.k
    }

    /// Append Hessenberg column `k`: `hcol` holds `h_{0..=k, k}` (the
    /// CGS2 coefficients) and `h_sub` is the subdiagonal `h_{k+1,k}`
    /// (the new basis vector's norm). Returns the updated implicit
    /// residual estimate `|t_{k+1}|`.
    pub fn push_column(&mut self, hcol: &[f64], h_sub: f64) -> f64 {
        let k = self.k;
        assert!(k < self.m, "restart length exceeded");
        assert_eq!(hcol.len(), k + 1, "column must have k+1 entries");
        let col = &mut self.h[k * (self.m + 1)..(k + 1) * (self.m + 1)];
        col[..=k].copy_from_slice(hcol);
        col[k + 1] = h_sub;

        // Apply the accumulated rotations to the new column.
        for j in 0..k {
            let (c, s) = (self.cs[j], self.sn[j]);
            let (a, b) = (col[j], col[j + 1]);
            col[j] = c * a + s * b;
            col[j + 1] = -s * a + c * b;
        }

        // Generate the rotation annihilating the subdiagonal.
        let (a, b) = (col[k], col[k + 1]);
        let mu = (a * a + b * b).sqrt();
        let (c, s) = if mu > 0.0 { (a / mu, b / mu) } else { (1.0, 0.0) };
        self.cs[k] = c;
        self.sn[k] = s;
        col[k] = mu;
        col[k + 1] = 0.0;

        // Update the transformed right-hand side.
        let tk = self.t[k];
        self.t[k] = c * tk;
        self.t[k + 1] = -s * tk;

        self.k += 1;
        self.t[self.k].abs()
    }

    /// The implicit residual estimate `|t_k|` of the current iterate.
    pub fn residual_estimate(&self) -> f64 {
        self.t[self.k].abs()
    }

    /// Solve the `k × k` triangular system `R y = t[0..k]` by back
    /// substitution (line 45's dense TRSM).
    pub fn solve_y(&self) -> Vec<f64> {
        let k = self.k;
        let mut y = self.t[..k].to_vec();
        for i in (0..k).rev() {
            let coli = &self.h[i * (self.m + 1)..];
            for j in i + 1..k {
                let colj = &self.h[j * (self.m + 1)..];
                y[i] -= colj[i] * y[j];
            }
            y[i] /= coli[i];
        }
        y
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Dense reference: compute min ‖β e₁ − H̄ y‖ by normal equations.
    fn dense_lsq(hbar: &[Vec<f64>], beta: f64) -> (Vec<f64>, f64) {
        let cols = hbar[0].len();
        // Normal equations HᵀH y = Hᵀ (β e₁).
        let mut ata = vec![vec![0.0; cols]; cols];
        let mut atb = vec![0.0; cols];
        for i in 0..cols {
            for j in 0..cols {
                for hr in hbar.iter() {
                    ata[i][j] += hr[i] * hr[j];
                }
            }
            atb[i] = hbar[0][i] * beta;
        }
        // Gaussian elimination.
        let mut y = atb.clone();
        let mut m = ata.clone();
        for p in 0..cols {
            let piv = m[p][p];
            for r in p + 1..cols {
                let f = m[r][p] / piv;
                let mp = m[p].clone();
                for (c2, mrc) in m[r].iter_mut().enumerate().skip(p) {
                    *mrc -= f * mp[c2];
                }
                y[r] -= f * y[p];
            }
        }
        for p in (0..cols).rev() {
            for c2 in p + 1..cols {
                let yc = y[c2];
                y[p] -= m[p][c2] * yc;
            }
            y[p] /= m[p][p];
        }
        // Residual norm.
        let mut res = 0.0;
        for (r, hr) in hbar.iter().enumerate() {
            let mut v = if r == 0 { beta } else { 0.0 };
            for (c2, yc) in y.iter().enumerate() {
                v -= hr[c2] * yc;
            }
            res += v * v;
        }
        (y, res.sqrt())
    }

    #[test]
    fn matches_dense_least_squares() {
        // A small synthetic Hessenberg matrix.
        let hbar = vec![
            vec![2.0, 1.0, 0.5],
            vec![1.0, 3.0, 1.0],
            vec![0.0, 0.5, 2.0],
            vec![0.0, 0.0, 0.25],
        ];
        let beta = 1.5;
        let mut qr = GivensQr::new(3);
        qr.reset(beta);
        let mut est = 0.0;
        for k in 0..3 {
            let hcol: Vec<f64> = (0..=k).map(|i| hbar[i][k]).collect();
            est = qr.push_column(&hcol, hbar[k + 1][k]);
        }
        let y = qr.solve_y();
        let (y_ref, res_ref) = dense_lsq(&hbar, beta);
        for (a, b) in y.iter().zip(y_ref.iter()) {
            assert!((a - b).abs() < 1e-10, "{} vs {}", a, b);
        }
        assert!((est - res_ref).abs() < 1e-10, "implicit residual {} vs dense {}", est, res_ref);
    }

    #[test]
    fn residual_estimate_decreases_monotonically() {
        // For a diagonally dominant Hessenberg the residual shrinks.
        let mut qr = GivensQr::new(5);
        qr.reset(1.0);
        let mut prev = 1.0;
        for k in 0..5 {
            let hcol: Vec<f64> = (0..=k).map(|i| if i == k { 4.0 } else { 0.3 }).collect();
            let est = qr.push_column(&hcol, 0.9);
            assert!(est <= prev + 1e-15, "Givens residual must not grow");
            prev = est;
        }
    }

    #[test]
    fn exact_solve_in_one_step() {
        // h = [[2],[0]] with beta=4: y = 2, residual 0.
        let mut qr = GivensQr::new(1);
        qr.reset(4.0);
        let est = qr.push_column(&[2.0], 0.0);
        assert!(est.abs() < 1e-15);
        assert_eq!(qr.solve_y(), vec![2.0]);
    }

    #[test]
    fn reset_clears_state() {
        let mut qr = GivensQr::new(2);
        qr.reset(1.0);
        qr.push_column(&[1.0], 0.5);
        qr.reset(2.0);
        assert_eq!(qr.cols(), 0);
        assert_eq!(qr.residual_estimate(), 2.0);
    }

    #[test]
    #[should_panic(expected = "restart length exceeded")]
    fn over_pushing_panics() {
        let mut qr = GivensQr::new(1);
        qr.reset(1.0);
        qr.push_column(&[1.0], 0.5);
        qr.push_column(&[1.0, 1.0], 0.5);
    }
}
