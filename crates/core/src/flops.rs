//! The floating-point operation count model.
//!
//! The benchmark's GFLOP/s metric divides a *modeled* operation count —
//! not a hardware counter — by the measured runtime, so the model must
//! be explicit and consistent between the mixed and double runs.
//! Operations of every precision count equally (§3: "floating point
//! operations of different precisions are counted equally").
//!
//! The formulas below follow the HPCG/HPG-MxP accounting conventions
//! (multiply-add = 2 ops) and include the paper's §3.2.4 adjustment:
//! the fused SpMV-restriction only counts the residual rows it actually
//! computes (the coarse-point rows), not a full fine-grid SpMV.

/// SpMV with `nnz` stored nonzeros: one multiply-add per entry.
pub fn spmv(nnz: usize) -> f64 {
    2.0 * nnz as f64
}

/// One forward Gauss–Seidel relaxation sweep over a matrix with `nnz`
/// nonzeros and `n` rows: a multiply-add per entry plus a subtract,
/// divide, and accumulate per row.
pub fn gs_sweep(nnz: usize, n: usize) -> f64 {
    2.0 * nnz as f64 + 3.0 * n as f64
}

/// Fused residual + injection restriction (§3.2.4): only the coarse
/// rows' residuals are computed. `nnz_coarse_rows` is the number of
/// fine-matrix nonzeros in the rows collocated with coarse points;
/// each contributes a multiply-add, plus one subtraction per coarse row.
pub fn fused_restriction(nnz_coarse_rows: usize, n_coarse: usize) -> f64 {
    2.0 * nnz_coarse_rows as f64 + n_coarse as f64
}

/// Unfused (reference, §3.1 item 3) restriction: a full fine-grid
/// residual SpMV (`nnz_fine` entries + `n_fine` subtractions) followed
/// by injection (free of FLOPs).
pub fn reference_restriction(nnz_fine: usize, n_fine: usize) -> f64 {
    2.0 * nnz_fine as f64 + n_fine as f64
}

/// Prolongation + correction: one add per coarse point (injection
/// transpose touches only collocated fine points).
pub fn prolongation(n_coarse: usize) -> f64 {
    n_coarse as f64
}

/// Dot product of local length `n`: multiply-add per element.
pub fn dot(n: usize) -> f64 {
    2.0 * n as f64
}

/// `w = alpha x + beta y`: three ops per element.
pub fn waxpby(n: usize) -> f64 {
    3.0 * n as f64
}

/// `y += alpha x`: two ops per element.
pub fn axpy(n: usize) -> f64 {
    2.0 * n as f64
}

/// Scale `x *= alpha`: one op per element.
pub fn scal(n: usize) -> f64 {
    n as f64
}

/// One full CGS2 orthogonalization at inner iteration `k` (k existing
/// basis vectors, local length `n`): two projection GEMV-Ts and two
/// update GEMVs (2·n·k each), plus the norm (2n) and normalization (n).
pub fn cgs2_step(n: usize, k: usize) -> f64 {
    8.0 * n as f64 * k as f64 + 3.0 * n as f64
}

/// Givens-rotation QR update at inner iteration `k` (redundant on every
/// rank, O(k) — negligible but counted for completeness).
pub fn givens_update(k: usize) -> f64 {
    6.0 * k as f64 + 10.0
}

/// Back-substitution of the `m × m` triangular projected system.
pub fn hessenberg_solve(m: usize) -> f64 {
    (m * m) as f64
}

/// Basis combination `r = Q t` with `k` columns of local length `n`.
pub fn basis_combine(n: usize, k: usize) -> f64 {
    2.0 * n as f64 * k as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formulas_are_positive_and_scale_linearly() {
        assert_eq!(spmv(100), 200.0);
        assert_eq!(gs_sweep(100, 10), 230.0);
        assert_eq!(dot(50), 100.0);
        assert_eq!(waxpby(50), 150.0);
        assert_eq!(axpy(50), 100.0);
        assert_eq!(scal(50), 50.0);
    }

    #[test]
    fn fused_restriction_is_cheaper_than_reference() {
        // 27-pt stencil: fine grid n, coarse grid n/8, ~27 nnz/row.
        let n_fine = 32usize * 32 * 32;
        let n_coarse = n_fine / 8;
        let fused = fused_restriction(27 * n_coarse, n_coarse);
        let reference = reference_restriction(27 * n_fine, n_fine);
        assert!(fused < reference / 7.0, "fusion saves ~8x the residual work");
    }

    #[test]
    fn cgs2_dominated_by_gemv_traffic() {
        let n = 1000;
        // At k=30 the four GEMV passes dominate the norm.
        assert!(cgs2_step(n, 30) > 8.0 * 1000.0 * 30.0);
        assert!(cgs2_step(n, 30) < 9.0 * 1000.0 * 30.0);
    }

    #[test]
    fn small_dense_terms() {
        assert!(givens_update(10) < 100.0);
        assert_eq!(hessenberg_solve(30), 900.0);
        assert_eq!(basis_combine(100, 5), 1000.0);
    }
}
