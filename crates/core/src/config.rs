//! Benchmark parameters — Table 1 of the paper.

use serde::{Deserialize, Serialize};

/// Which implementation variant to run.
///
/// The paper compares its optimized implementation ("present") against
/// the reference implementation of Yamazaki et al. ("xsdk"); §3.1 lists
/// the reference code's inefficiencies and §3.2 the optimizations. Both
/// code paths are implemented here so the comparison can be reproduced.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ImplVariant {
    /// ELL storage, multicolor Gauss–Seidel, fused SpMV-restriction,
    /// compute/communication overlap, device-side mixed-precision
    /// vector ops (§3.2).
    Optimized,
    /// CSR storage, level-scheduled two-kernel Gauss–Seidel, explicit
    /// full-grid residual + injection restriction, no overlap (§3.1).
    Reference,
}

/// The run parameters of the benchmark (Table 1), with the paper's
/// defaults. Local mesh size defaults to a size runnable on a laptop;
/// the paper's 320³-per-GCD operating point is evaluated by the
/// performance model in `hpgmxp-machine`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BenchmarkParams {
    /// GMRES restart length (paper: 30, the PETSc default).
    pub restart: usize,
    /// Local mesh points per rank in each dimension (paper: 320³).
    pub local_dims: (u32, u32, u32),
    /// Multigrid levels (fixed at 4 by the benchmark).
    pub mg_levels: usize,
    /// Pre-smoother sweeps per level (forward Gauss–Seidel).
    pub pre_smooth: usize,
    /// Post-smoother sweeps per level.
    pub post_smooth: usize,
    /// Maximum GMRES iterations per benchmark solve (paper: 300).
    pub max_iters_per_solve: usize,
    /// Relative convergence tolerance for validation (paper: 1e-9).
    pub validation_tol: f64,
    /// Iteration cap of the validation solves (paper: 10 000).
    pub validation_max_iters: usize,
    /// Ranks used by standard validation (paper: 8 GCDs = 1 node).
    pub validation_ranks: usize,
    /// Specified running time in seconds below 1024 nodes (paper: 1800).
    pub run_time_small: f64,
    /// Specified running time in seconds at/above 1024 nodes (paper: 900).
    pub run_time_large: f64,
    /// Number of timed benchmark solves to run in this reproduction
    /// (stands in for "repeat until the specified time is filled").
    pub benchmark_solves: usize,
}

impl Default for BenchmarkParams {
    fn default() -> Self {
        BenchmarkParams {
            restart: 30,
            local_dims: (16, 16, 16),
            mg_levels: 4,
            pre_smooth: 1,
            post_smooth: 1,
            max_iters_per_solve: 300,
            validation_tol: 1e-9,
            validation_max_iters: 10_000,
            validation_ranks: 8,
            run_time_small: 1800.0,
            run_time_large: 900.0,
            benchmark_solves: 1,
        }
    }
}

impl BenchmarkParams {
    /// The paper's exact Frontier configuration (Table 1). The 320³
    /// local problem needs ~28 GB/GCD; do not instantiate it in memory
    /// on a workstation — it parameterizes the performance model.
    pub fn paper_frontier() -> Self {
        BenchmarkParams { local_dims: (320, 320, 320), ..Default::default() }
    }

    /// A laptop-scale configuration for real runs.
    pub fn small(n: u32) -> Self {
        assert!(n.is_multiple_of(8), "local dim must be divisible by 2^(levels-1)");
        BenchmarkParams { local_dims: (n, n, n), ..Default::default() }
    }

    /// Specified running time for a node count (Table 1's two rows).
    pub fn specified_run_time(&self, nodes: usize) -> f64 {
        if nodes >= 1024 {
            self.run_time_large
        } else {
            self.run_time_small
        }
    }

    /// Local rows per rank.
    pub fn local_rows(&self) -> usize {
        self.local_dims.0 as usize * self.local_dims.1 as usize * self.local_dims.2 as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_table1() {
        let p = BenchmarkParams::default();
        assert_eq!(p.restart, 30);
        assert_eq!(p.mg_levels, 4);
        assert_eq!(p.max_iters_per_solve, 300);
        assert_eq!(p.validation_tol, 1e-9);
        assert_eq!(p.validation_max_iters, 10_000);
        assert_eq!(p.validation_ranks, 8);
    }

    #[test]
    fn paper_config_local_size() {
        let p = BenchmarkParams::paper_frontier();
        assert_eq!(p.local_dims, (320, 320, 320));
        assert_eq!(p.local_rows(), 32_768_000);
    }

    #[test]
    fn run_time_rule() {
        let p = BenchmarkParams::default();
        assert_eq!(p.specified_run_time(512), 1800.0);
        assert_eq!(p.specified_run_time(1024), 900.0);
        assert_eq!(p.specified_run_time(9408), 900.0);
    }

    #[test]
    fn serde_roundtrip() {
        let p = BenchmarkParams::default();
        let s = serde_json::to_string(&p).unwrap();
        let q: BenchmarkParams = serde_json::from_str(&s).unwrap();
        assert_eq!(p, q);
    }
}
