//! Distributed computational kernels over a [`Level`].
//!
//! Every kernel exists in the two forms the paper compares:
//!
//! * **Optimized** (§3.2): ELL storage, multicolor Gauss–Seidel in
//!   relaxation form, fused SpMV-restriction, and split-phase halo
//!   exchange that hides communication under interior work;
//! * **Reference** (§3.1): CSR storage, two-kernel level-scheduled
//!   Gauss–Seidel, full-grid residual + injection restriction, and
//!   blocking exchange before every kernel.
//!
//! Both forms compute identical values (tested); they differ in data
//! layout, fused work, and communication scheduling — exactly the
//! paper's claim that its speedups are implementation quality, not
//! algorithm changes.

use crate::config::ImplVariant;
use crate::flops;
use crate::motifs::{Motif, MotifStats};
use crate::policy::PrecCtx;
use crate::problem::{Level, RefPath};
use hpgmxp_comm::{Comm, CommResult, Stream, Timeline};
use hpgmxp_sparse::blas;
use hpgmxp_sparse::csr::CsrMatrix;
use hpgmxp_sparse::gauss_seidel::{gs_backward, gs_color_class, gs_forward_reference, SweepMatrix};
use hpgmxp_sparse::{EllMatrix, Half, PrecKind, Scalar};
use rayon::prelude::*;
use std::time::Instant;

/// A borrowed view of one level's ELL operator at a runtime-selected
/// storage precision — the enum-dispatch layer that maps a
/// [`crate::policy::PrecisionPolicy`] back onto the monomorphized
/// split-precision kernels.
#[derive(Clone, Copy)]
pub enum EllRef<'a> {
    /// Double-stored values.
    F64(&'a EllMatrix<f64>),
    /// Single-stored values.
    F32(&'a EllMatrix<f32>),
    /// Half-stored values.
    F16(&'a EllMatrix<Half>),
}

/// A borrowed view of one level's CSR operator at a runtime storage
/// precision (the reference variant's format).
#[derive(Clone, Copy)]
pub enum CsrRef<'a> {
    /// Double-stored values.
    F64(&'a CsrMatrix<f64>),
    /// Single-stored values.
    F32(&'a CsrMatrix<f32>),
    /// Half-stored values.
    F16(&'a CsrMatrix<Half>),
}

/// A borrowed view of the reference-path triangular factors at a
/// runtime storage precision.
#[derive(Clone, Copy)]
pub enum RefPathRef<'a> {
    /// Double-stored factors.
    F64(&'a RefPath<f64>),
    /// Single-stored factors.
    F32(&'a RefPath<f32>),
    /// Half-stored factors.
    F16(&'a RefPath<Half>),
}

/// Run `$body` with `$m` bound to the concrete matrix inside an
/// [`EllRef`] / [`CsrRef`] / [`RefPathRef`] — each kernel body is
/// written once and monomorphized per storage precision.
macro_rules! with_storage {
    ($r:expr, $enum:ident, $m:ident => $body:expr) => {
        match $r {
            $enum::F64($m) => $body,
            $enum::F32($m) => $body,
            $enum::F16($m) => $body,
        }
    };
}

impl<'a> EllRef<'a> {
    /// Storage kind of the viewed matrix.
    pub fn kind(&self) -> PrecKind {
        match self {
            EllRef::F64(_) => PrecKind::F64,
            EllRef::F32(_) => PrecKind::F32,
            EllRef::F16(_) => PrecKind::F16,
        }
    }

    /// Padded row width.
    pub fn width(&self) -> usize {
        with_storage!(self, EllRef, m => m.width())
    }

    /// Matrix-value bytes of one full pass (storage precision).
    pub fn value_bytes(&self) -> usize {
        with_storage!(self, EllRef, m => m.value_bytes())
    }

    /// Value + index bytes of one full pass.
    pub fn spmv_matrix_bytes(&self) -> usize {
        with_storage!(self, EllRef, m => m.spmv_matrix_bytes())
    }
}

impl<'a> CsrRef<'a> {
    /// Storage kind of the viewed matrix.
    pub fn kind(&self) -> PrecKind {
        match self {
            CsrRef::F64(_) => PrecKind::F64,
            CsrRef::F32(_) => PrecKind::F32,
            CsrRef::F16(_) => PrecKind::F16,
        }
    }

    /// Matrix-value bytes of one full pass (storage precision).
    pub fn value_bytes(&self) -> usize {
        with_storage!(self, CsrRef, m => m.value_bytes())
    }

    /// Value + index + row-pointer bytes of one full pass.
    pub fn spmv_matrix_bytes(&self) -> usize {
        with_storage!(self, CsrRef, m => m.spmv_matrix_bytes())
    }
}

impl Level {
    /// This level's ELL operator at a runtime storage kind (panics if
    /// the assembly policy never materialized it).
    pub fn ell_at(&self, kind: PrecKind) -> EllRef<'_> {
        match kind {
            PrecKind::F64 => EllRef::F64(self.ell64()),
            PrecKind::F32 => EllRef::F32(self.ell32()),
            PrecKind::F16 => EllRef::F16(self.ell16()),
        }
    }

    /// This level's CSR operator at a runtime storage kind.
    pub fn csr_at(&self, kind: PrecKind) -> CsrRef<'_> {
        match kind {
            PrecKind::F64 => CsrRef::F64(self.csr64()),
            PrecKind::F32 => CsrRef::F32(self.csr32()),
            PrecKind::F16 => CsrRef::F16(self.csr16()),
        }
    }

    /// This level's reference-path factors at a runtime storage kind.
    pub fn refpath_at(&self, kind: PrecKind) -> RefPathRef<'_> {
        match kind {
            PrecKind::F64 => RefPathRef::F64(self.ref64()),
            PrecKind::F32 => RefPathRef::F32(self.ref32()),
            PrecKind::F16 => RefPathRef::F16(self.ref16()),
        }
    }
}

/// Access to a level's operator data at one precision; implemented for
/// `f64` (reference precision) and `f32` (the benchmark's low
/// precision) so solver code is written once.
pub trait PrecLevel<S: Scalar> {
    /// CSR form of the operator.
    fn csr(&self) -> &CsrMatrix<S>;
    /// ELL form of the operator.
    fn ell(&self) -> &EllMatrix<S>;
    /// Reference-path triangular factors.
    fn refpath(&self) -> &RefPath<S>;
}

impl PrecLevel<f64> for Level {
    fn csr(&self) -> &CsrMatrix<f64> {
        self.csr64()
    }
    fn ell(&self) -> &EllMatrix<f64> {
        self.ell64()
    }
    fn refpath(&self) -> &RefPath<f64> {
        self.ref64()
    }
}

impl PrecLevel<f32> for Level {
    fn csr(&self) -> &CsrMatrix<f32> {
        self.csr32()
    }
    fn ell(&self) -> &EllMatrix<f32> {
        self.ell32()
    }
    fn refpath(&self) -> &RefPath<f32> {
        self.ref32()
    }
}

impl PrecLevel<Half> for Level {
    fn csr(&self) -> &CsrMatrix<Half> {
        self.csr16()
    }
    fn ell(&self) -> &EllMatrix<Half> {
        self.ell16()
    }
    fn refpath(&self) -> &RefPath<Half> {
        self.ref16()
    }
}

/// Shared context of every distributed kernel call.
pub struct OpCtx<'a, C: Comm> {
    /// Communicator of this rank.
    pub comm: &'a C,
    /// Which implementation variant to execute.
    pub variant: ImplVariant,
    /// Event recorder (usually disabled).
    pub timeline: &'a Timeline,
    /// Precision context: storage kind per level and halo wire format.
    /// [`PrecCtx::native`] follows the compute scalar everywhere —
    /// bit-identical to the pre-policy behavior.
    pub prec: PrecCtx,
}

impl<'a, C: Comm> OpCtx<'a, C> {
    /// Context with the native precision mapping (storage and wire
    /// follow the compute scalar).
    pub fn new(comm: &'a C, variant: ImplVariant, timeline: &'a Timeline) -> Self {
        OpCtx { comm, variant, timeline, prec: PrecCtx::native() }
    }

    /// Context with an explicit precision policy view.
    pub fn with_prec(
        comm: &'a C,
        variant: ImplVariant,
        timeline: &'a Timeline,
        prec: PrecCtx,
    ) -> Self {
        OpCtx { comm, variant, timeline, prec }
    }
}

/// Direction of a Gauss–Seidel sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SweepDir {
    /// Ascending row/color order (HPG-MxP's smoother).
    Forward,
    /// Descending order (second half of HPCG's symmetric smoother).
    Backward,
}

/// Distributed `y = A x`. `x` must be a full distributed vector
/// (owned + ghosts); its ghost region is refreshed by the embedded halo
/// exchange. `y` receives the owned rows. Panics on a transport fault;
/// see [`dist_spmv_checked`] for the fault-tolerant form.
pub fn dist_spmv<S: Scalar, C: Comm>(
    ctx: &OpCtx<C>,
    level: &Level,
    stats: &mut MotifStats,
    tag: u64,
    x: &mut [S],
    y: &mut [S],
) {
    dist_spmv_checked(ctx, level, stats, tag, x, y).unwrap_or_else(|e| panic!("{e}"));
}

/// [`dist_spmv`] that surfaces transport faults (dead peer, corrupt
/// frame, receive deadline) as a typed error instead of panicking.
pub fn dist_spmv_checked<S: Scalar, C: Comm>(
    ctx: &OpCtx<C>,
    level: &Level,
    stats: &mut MotifStats,
    tag: u64,
    x: &mut [S],
    y: &mut [S],
) -> CommResult<()> {
    let t0 = Instant::now();
    let kind = ctx.prec.storage_kind(level.depth, S::KIND);
    let wire = ctx.prec.wire_bytes(S::KIND);
    match ctx.variant {
        ImplVariant::Optimized => {
            // Overlap: send boundary values, compute interior rows while
            // messages fly, then finish with boundary rows (§3.2.3).
            // Both halves run on the thread pool; per-row accumulation
            // order is fixed, so results match the sequential path bit
            // for bit at every thread count. The type-state handle from
            // `begin` guarantees the finish is paired and lets `finish`
            // unpack whichever neighbor lands first. Storage precision
            // and ghost wire format come from the policy context; the
            // kernels widen stored values into `S` on load.
            let ell = level.ell_at(kind);
            let halo = level.halo.begin_wire_checked(ctx.comm, tag, x, wire, ctx.timeline)?;
            {
                let _s = ctx.timeline.span("SpMV interior", Stream::Compute);
                with_storage!(ell, EllRef, m => m.spmv_rows_par(&level.interior_rows, x, y));
            }
            halo.finish_checked(ctx.comm, x, ctx.timeline)?;
            {
                let _s = ctx.timeline.span("SpMV boundary", Stream::Compute);
                with_storage!(ell, EllRef, m => m.spmv_rows_par(&level.boundary_rows, x, y));
            }
            stats.record_traffic(
                Motif::SpMV,
                ell.value_bytes() as f64,
                (ell.spmv_matrix_bytes() + 2 * level.n_local() * S::BYTES) as f64,
            );
        }
        ImplVariant::Reference => {
            level.halo.exchange_wire_checked(ctx.comm, tag, x, wire, ctx.timeline)?;
            let _s = ctx.timeline.span("SpMV", Stream::Compute);
            let csr = level.csr_at(kind);
            with_storage!(csr, CsrRef, m => m.spmv_par(x, y));
            stats.record_traffic(
                Motif::SpMV,
                csr.value_bytes() as f64,
                (csr.spmv_matrix_bytes() + 2 * level.n_local() * S::BYTES) as f64,
            );
        }
    }
    stats.record_traffic(Motif::Comm, 0.0, level.halo.send_bytes_wire(wire) as f64);
    stats.record(Motif::SpMV, t0.elapsed().as_secs_f64(), flops::spmv(level.nnz()));
    Ok(())
}

/// One distributed Gauss–Seidel sweep for `A z = r`, updating `z` in
/// place. Ghosts of `z` are refreshed from neighbors' pre-sweep values
/// (each rank smooths its subdomain against the latest halo, the
/// standard HPCG semantics).
pub fn dist_gs_sweep<S: Scalar, C: Comm>(
    ctx: &OpCtx<C>,
    level: &Level,
    stats: &mut MotifStats,
    tag: u64,
    dir: SweepDir,
    r: &[S],
    z: &mut [S],
) {
    dist_gs_sweep_checked(ctx, level, stats, tag, dir, r, z).unwrap_or_else(|e| panic!("{e}"));
}

/// [`dist_gs_sweep`] that surfaces transport faults as a typed error.
pub fn dist_gs_sweep_checked<S: Scalar, C: Comm>(
    ctx: &OpCtx<C>,
    level: &Level,
    stats: &mut MotifStats,
    tag: u64,
    dir: SweepDir,
    r: &[S],
    z: &mut [S],
) -> CommResult<()> {
    let t0 = Instant::now();
    let kind = ctx.prec.storage_kind(level.depth, S::KIND);
    let wire = ctx.prec.wire_bytes(S::KIND);
    match ctx.variant {
        ImplVariant::Optimized => {
            let ncolors = level.coloring.num_colors as usize;
            // The first-processed color's interior rows hide the halo
            // exchange; its boundary rows and all later colors run after
            // the ghosts arrive. Packing happens inside `begin`, before
            // any row is updated — the paper's event-ordering constraint.
            let first = match dir {
                SweepDir::Forward => 0,
                SweepDir::Backward => ncolors - 1,
            };
            let ell = level.ell_at(kind);
            with_storage!(ell, EllRef, m => {
                let halo = level.halo.begin_wire_checked(ctx.comm, tag, z, wire, ctx.timeline)?;
                {
                    let _s = ctx.timeline.span("GS interior (first color)", Stream::Compute);
                    gs_color_class(m, &level.color_interior[first], r, z);
                }
                halo.finish_checked(ctx.comm, z, ctx.timeline)?;
                {
                    let _s = ctx.timeline.span("GS boundary (first color)", Stream::Compute);
                    gs_color_class(m, &level.color_boundary[first], r, z);
                }
                let _s = ctx.timeline.span("GS remaining colors", Stream::Compute);
                match dir {
                    SweepDir::Forward => {
                        for c in 1..ncolors {
                            gs_color_class(m, &level.coloring.rows_of[c], r, z);
                        }
                    }
                    SweepDir::Backward => {
                        for c in (0..ncolors - 1).rev() {
                            gs_color_class(m, &level.coloring.rows_of[c], r, z);
                        }
                    }
                }
            });
            // One pass over the padded matrix + rhs read + solution
            // read-modify-write at the compute precision.
            stats.record_traffic(
                Motif::GaussSeidel,
                ell.value_bytes() as f64,
                (ell.spmv_matrix_bytes() + 3 * level.n_local() * S::BYTES) as f64,
            );
        }
        ImplVariant::Reference => {
            level.halo.exchange_wire_checked(ctx.comm, tag, z, wire, ctx.timeline)?;
            let _s = ctx.timeline.span("GS (reference)", Stream::Compute);
            match dir {
                SweepDir::Forward => {
                    with_storage!(level.refpath_at(kind), RefPathRef, rp => {
                        gs_forward_reference(&rp.lower, &rp.upper, &level.schedule, r, z);
                    });
                }
                // The reference code has no backward path on GPU; the
                // sequential sweep is its semantic equivalent.
                SweepDir::Backward => {
                    with_storage!(level.csr_at(kind), CsrRef, m => gs_backward(m, r, z))
                }
            }
            let csr = level.csr_at(kind);
            stats.record_traffic(
                Motif::GaussSeidel,
                csr.value_bytes() as f64,
                (csr.spmv_matrix_bytes() + 5 * level.n_local() * S::BYTES) as f64,
            );
        }
    }
    stats.record_traffic(Motif::Comm, 0.0, level.halo.send_bytes_wire(wire) as f64);
    stats.record(
        Motif::GaussSeidel,
        t0.elapsed().as_secs_f64(),
        flops::gs_sweep(level.nnz(), level.n_local()),
    );
    Ok(())
}

/// Distributed restriction: compute the smoothed residual
/// `b_f − A_f z` and inject it onto the coarse grid, producing the
/// coarse right-hand side `rc` (owned coarse rows).
///
/// Optimized = the fused kernel of §3.2.4 (residual evaluated only at
/// coarse points, overlapped with the halo exchange of `z`).
/// Reference = §3.1 item 3: full fine-grid residual SpMV followed by
/// injection.
pub fn dist_restrict<S: Scalar, C: Comm>(
    ctx: &OpCtx<C>,
    fine: &Level,
    stats: &mut MotifStats,
    tag: u64,
    b_f: &[S],
    z: &mut [S],
    rc: &mut [S],
) {
    dist_restrict_checked(ctx, fine, stats, tag, b_f, z, rc).unwrap_or_else(|e| panic!("{e}"));
}

/// [`dist_restrict`] that surfaces transport faults as a typed error.
pub fn dist_restrict_checked<S: Scalar, C: Comm>(
    ctx: &OpCtx<C>,
    fine: &Level,
    stats: &mut MotifStats,
    tag: u64,
    b_f: &[S],
    z: &mut [S],
    rc: &mut [S],
) -> CommResult<()> {
    let map = fine.c2f.as_ref().expect("restriction requires a coarser level");
    let t0 = Instant::now();
    let kind = ctx.prec.storage_kind(fine.depth, S::KIND);
    let wire = ctx.prec.wire_bytes(S::KIND);
    match ctx.variant {
        ImplVariant::Optimized => {
            let ell = fine.ell_at(kind);
            with_storage!(ell, EllRef, m => {
                let halo = fine.halo.begin_wire_checked(ctx.comm, tag, z, wire, ctx.timeline)?;
                {
                    let _s = ctx.timeline.span("fused SpMV-restrict interior", Stream::Compute);
                    fused_restrict_rows(m, &fine.restrict_interior, &map.c2f, b_f, z, rc);
                }
                halo.finish_checked(ctx.comm, z, ctx.timeline)?;
                let _s = ctx.timeline.span("fused SpMV-restrict boundary", Stream::Compute);
                fused_restrict_rows(m, &fine.restrict_boundary, &map.c2f, b_f, z, rc);
            });
            // The fused kernel touches `width` padded entries of each
            // coarse-collocated row (ELL row walk).
            let touched = ell.width() * map.n_coarse;
            stats.record_traffic(
                Motif::Restriction,
                (touched * kind.bytes()) as f64,
                (touched * (kind.bytes() + 4) + map.n_coarse * 2 * S::BYTES) as f64,
            );
            stats.record(
                Motif::Restriction,
                t0.elapsed().as_secs_f64(),
                flops::fused_restriction(fine.nnz_coarse_rows(), map.n_coarse),
            );
        }
        ImplVariant::Reference => {
            fine.halo.exchange_wire_checked(ctx.comm, tag, z, wire, ctx.timeline)?;
            let _s = ctx.timeline.span("residual SpMV + restrict", Stream::Compute);
            let n = fine.n_local();
            let mut tmp = vec![S::ZERO; n];
            let csr = fine.csr_at(kind);
            with_storage!(csr, CsrRef, m => m.spmv(z, &mut tmp));
            for i in 0..n {
                tmp[i] = b_f[i] - tmp[i];
            }
            for (ci, &f) in map.c2f.iter().enumerate() {
                rc[ci] = tmp[f as usize];
            }
            stats.record_traffic(
                Motif::Restriction,
                csr.value_bytes() as f64,
                (csr.spmv_matrix_bytes() + (3 * n + 2 * map.n_coarse) * S::BYTES) as f64,
            );
            stats.record(
                Motif::Restriction,
                t0.elapsed().as_secs_f64(),
                flops::reference_restriction(fine.nnz(), n),
            );
        }
    }
    stats.record_traffic(Motif::Comm, 0.0, fine.halo.send_bytes_wire(wire) as f64);
    Ok(())
}

/// Fused residual-evaluate-and-inject over one list of coarse points
/// (§3.2.4), parallel over the list.
fn fused_restrict_rows<S: Scalar, M: SweepMatrix<S>>(
    ell: &M,
    coarse_rows: &[u32],
    c2f: &[u32],
    b_f: &[S],
    z: &[S],
    rc: &mut [S],
) {
    let shared = hpgmxp_sparse::shared::SharedMut::new(rc);
    let sh = &shared;
    coarse_rows.par_iter().for_each(move |&ci| {
        assert!((ci as usize) < sh.len(), "coarse row {} out of range {}", ci, sh.len());
        let f = c2f[ci as usize] as usize;
        // SAFETY: `coarse_rows` lists pairwise-distinct coarse indices;
        // each task writes only its own `rc[ci]` and reads only `b_f`
        // and `z`, which no task writes.
        unsafe { *sh.get_mut(ci as usize) = b_f[f] - ell.row_dot(f, z) };
    });
}

/// Prolongation + correction: `z += Rᵀ zc` — scatter each coarse value
/// onto its collocated fine point, in parallel (collocated points are
/// always owned by the same rank, and the coarse→fine map is
/// injective).
pub fn prolong_add<S: Scalar>(fine: &Level, stats: &mut MotifStats, zc: &[S], z: &mut [S]) {
    let map = fine.c2f.as_ref().expect("prolongation requires a coarser level");
    let t0 = Instant::now();
    let shared = hpgmxp_sparse::shared::SharedMut::new(z);
    let sh = &shared;
    zc[..map.n_coarse].par_iter().enumerate().for_each(move |(i, &c)| {
        let f = map.c2f[i] as usize;
        assert!(f < sh.len(), "fine point {} out of range {}", f, sh.len());
        // SAFETY: `c2f` is injective, so every task touches a distinct
        // fine-grid element and nothing else reads `z` concurrently.
        unsafe { *sh.get_mut(f) += c };
    });
    stats.record(
        Motif::Prolongation,
        t0.elapsed().as_secs_f64(),
        flops::prolongation(map.n_coarse),
    );
}

/// Distributed dot product over owned entries, reduced across ranks.
/// Local arithmetic runs in `S`; the reduction always happens in `f64`
/// (as MPI would with a higher-precision reduction type). The local
/// part uses the deterministic blocked-pairwise reduction, so residual
/// histories are bit-identical at every `RAYON_NUM_THREADS`.
pub fn dist_dot<S: Scalar, C: Comm>(
    comm: &C,
    stats: &mut MotifStats,
    motif: Motif,
    x: &[S],
    y: &[S],
) -> f64 {
    dist_dot_checked(comm, stats, motif, x, y).unwrap_or_else(|e| panic!("{e}"))
}

/// [`dist_dot`] that surfaces transport faults as a typed error.
pub fn dist_dot_checked<S: Scalar, C: Comm>(
    comm: &C,
    stats: &mut MotifStats,
    motif: Motif,
    x: &[S],
    y: &[S],
) -> CommResult<f64> {
    let t0 = Instant::now();
    let local = blas::dot_par(x, y).to_f64();
    let global = comm.allreduce_scalar_checked(local, hpgmxp_comm::ReduceOp::Sum)?;
    stats.record(motif, t0.elapsed().as_secs_f64(), flops::dot(x.len()));
    Ok(global)
}

/// Distributed 2-norm over owned entries. NaN inputs (e.g. an fp16
/// inner solve that overflowed — the paper's standalone-half
/// breakdown) propagate as NaN instead of being masked to zero by the
/// `max`, so a broken solve reports non-convergence rather than a
/// silent false success.
pub fn dist_norm2<S: Scalar, C: Comm>(
    comm: &C,
    stats: &mut MotifStats,
    motif: Motif,
    x: &[S],
) -> f64 {
    dist_norm2_checked(comm, stats, motif, x).unwrap_or_else(|e| panic!("{e}"))
}

/// [`dist_norm2`] that surfaces transport faults as a typed error.
pub fn dist_norm2_checked<S: Scalar, C: Comm>(
    comm: &C,
    stats: &mut MotifStats,
    motif: Motif,
    x: &[S],
) -> CommResult<f64> {
    let d = dist_dot_checked(comm, stats, motif, x, x)?;
    Ok(if d.is_nan() { f64::NAN } else { d.max(0.0).sqrt() })
}

/// Recorded `w = alpha x + beta y` (owned entries).
pub fn waxpby_op<S: Scalar>(
    stats: &mut MotifStats,
    alpha: S,
    x: &[S],
    beta: S,
    y: &[S],
    w: &mut [S],
) {
    let t0 = Instant::now();
    blas::waxpby(alpha, x, beta, y, w);
    stats.record(Motif::Waxpby, t0.elapsed().as_secs_f64(), flops::waxpby(w.len()));
}

/// Recorded `y += alpha x` (owned entries).
pub fn axpy_op<S: Scalar>(stats: &mut MotifStats, alpha: S, x: &[S], y: &mut [S]) {
    let t0 = Instant::now();
    blas::axpy(alpha, x, y);
    stats.record(Motif::Waxpby, t0.elapsed().as_secs_f64(), flops::axpy(y.len()));
}

/// Recorded mixed-precision solution update `y(f64) += alpha·x(S)` —
/// line 47 of Algorithm 3 as a single fused device kernel (§3.2.5),
/// generic over the inner (low) precision. This is the one mixed-AXPY
/// code path: the former f32-hardwired `axpy_mixed_op` was this
/// function instantiated at `S = f32`, bit for bit.
pub fn axpy_lo_mixed_op<S: Scalar>(stats: &mut MotifStats, alpha: f64, x: &[S], y: &mut [f64]) {
    let t0 = Instant::now();
    blas::axpy_lo_into_f64(alpha, x, y);
    stats.record(Motif::Waxpby, t0.elapsed().as_secs_f64(), flops::axpy(y.len()));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{assemble, ProblemSpec};
    use hpgmxp_comm::{run_spmd, SelfComm};
    use hpgmxp_geometry::{ProcGrid, Stencil27};

    fn spec(procs: ProcGrid, n: u32, levels: usize) -> ProblemSpec {
        ProblemSpec {
            local: (n, n, n),
            procs,
            stencil: Stencil27::symmetric(),
            mg_levels: levels,
            seed: 7,
        }
    }

    fn ctx<C: Comm>(comm: &C, variant: ImplVariant) -> (OpCtx<'_, C>, Timeline) {
        let _ = &comm;
        (OpCtx::new(comm, variant, Box::leak(Box::new(Timeline::disabled()))), Timeline::disabled())
    }

    /// Distributed SpMV across 2 ranks must equal the serial SpMV of the
    /// equivalent global problem, in both variants.
    #[test]
    fn dist_spmv_matches_serial() {
        for variant in [ImplVariant::Optimized, ImplVariant::Reference] {
            let procs = ProcGrid::new(2, 1, 1);
            let results = run_spmd(2, move |c| {
                let p = assemble(&spec(procs, 4, 1), c.rank());
                let l = &p.levels[0];
                let mut stats = MotifStats::new();
                let tl = Timeline::disabled();
                let octx = OpCtx::new(&c, variant, &tl);
                // x holds each point's global id.
                let g = l.grid.global();
                let mut x = vec![0.0f64; l.vec_len()];
                for (i, xi) in x[..l.n_local()].iter_mut().enumerate() {
                    let (ix, iy, iz) = l.grid.coords(i);
                    let (gx, gy, gz) = l.grid.to_global(ix, iy, iz);
                    *xi = g.index(gx, gy, gz) as f64 * 0.01;
                }
                let mut y = vec![0.0f64; l.n_local()];
                dist_spmv(&octx, l, &mut stats, 0, &mut x, &mut y);
                (c.rank(), y)
            });

            // Serial equivalent: 8x4x4 global grid.
            let serial_spec = ProblemSpec {
                local: (8, 4, 4),
                procs: ProcGrid::new(1, 1, 1),
                stencil: Stencil27::symmetric(),
                mg_levels: 1,
                seed: 7,
            };
            let sp = assemble(&serial_spec, 0);
            let sl = &sp.levels[0];
            let g = sl.grid.global();
            let mut x = vec![0.0f64; sl.vec_len()];
            for (i, xi) in x[..sl.n_local()].iter_mut().enumerate() {
                let (ix, iy, iz) = sl.grid.coords(i);
                *xi = g.index(ix as u64, iy as u64, iz as u64) as f64 * 0.01;
            }
            let mut y_serial = vec![0.0f64; sl.n_local()];
            sl.csr64().spmv(&x, &mut y_serial);

            for (rank, y) in results {
                let lg = hpgmxp_geometry::LocalGrid::new((4, 4, 4), procs, rank as u32);
                for (i, yi) in y.iter().enumerate() {
                    let (ix, iy, iz) = lg.coords(i);
                    let (gx, gy, gz) = lg.to_global(ix, iy, iz);
                    let si = g.index(gx, gy, gz) as usize;
                    assert!(
                        (yi - y_serial[si]).abs() < 1e-12,
                        "variant {:?} rank {} row {}: {} vs {}",
                        variant,
                        rank,
                        i,
                        yi,
                        y_serial[si]
                    );
                }
            }
        }
    }

    /// Optimized (multicolor, overlapped) and plain multicolor sweeps
    /// produce identical results; reference and lexicographic agree.
    #[test]
    fn gs_variants_agree_with_their_references() {
        let procs = ProcGrid::new(2, 1, 1);
        run_spmd(2, move |c| {
            let p = assemble(&spec(procs, 4, 1), c.rank());
            let l = &p.levels[0];
            let tl = Timeline::disabled();
            let mut stats = MotifStats::new();
            let r: Vec<f64> = (0..l.n_local()).map(|i| (i as f64) * 0.1 - 2.0).collect();

            // Overlapped optimized sweep.
            let octx = OpCtx::new(&c, ImplVariant::Optimized, &tl);
            let mut z_opt = vec![0.3f64; l.vec_len()];
            dist_gs_sweep(&octx, l, &mut stats, 0, SweepDir::Forward, &r, &mut z_opt);

            // Plain (non-overlapped) multicolor sweep: exchange then sweep.
            let mut z_plain = vec![0.3f64; l.vec_len()];
            l.halo.exchange(&c, 1, &mut z_plain, &tl);
            hpgmxp_sparse::gauss_seidel::gs_multicolor(l.ell64(), &l.coloring, &r, &mut z_plain);
            for (a, b) in z_opt.iter().zip(z_plain.iter()) {
                assert!((a - b).abs() < 1e-14);
            }

            // Reference sweep equals the sequential lexicographic sweep.
            let rctx = OpCtx::new(&c, ImplVariant::Reference, &tl);
            let mut z_ref = vec![0.3f64; l.vec_len()];
            dist_gs_sweep(&rctx, l, &mut stats, 2, SweepDir::Forward, &r, &mut z_ref);
            let mut z_lex = vec![0.3f64; l.vec_len()];
            l.halo.exchange(&c, 3, &mut z_lex, &tl);
            hpgmxp_sparse::gauss_seidel::gs_forward(l.csr64(), &r, &mut z_lex);
            for (a, b) in z_ref.iter().zip(z_lex.iter()) {
                assert!((a - b).abs() < 1e-13);
            }
        });
    }

    /// Fused and reference restrictions agree.
    #[test]
    fn restrict_variants_agree() {
        let procs = ProcGrid::new(2, 1, 1);
        run_spmd(2, move |c| {
            let p = assemble(&spec(procs, 8, 2), c.rank());
            let l = &p.levels[0];
            let nc = p.levels[1].n_local();
            let tl = Timeline::disabled();
            let mut stats = MotifStats::new();
            let b_f: Vec<f64> = (0..l.n_local()).map(|i| (i % 11) as f64).collect();
            let z0: Vec<f64> = (0..l.vec_len()).map(|i| ((i * 3) % 7) as f64 * 0.1).collect();

            let octx = OpCtx::new(&c, ImplVariant::Optimized, &tl);
            let mut z1 = z0.clone();
            let mut rc1 = vec![0.0f64; nc];
            dist_restrict(&octx, l, &mut stats, 0, &b_f, &mut z1, &mut rc1);

            let rctx = OpCtx::new(&c, ImplVariant::Reference, &tl);
            let mut z2 = z0.clone();
            let mut rc2 = vec![0.0f64; nc];
            dist_restrict(&rctx, l, &mut stats, 1, &b_f, &mut z2, &mut rc2);

            for (a, b) in rc1.iter().zip(rc2.iter()) {
                assert!((a - b).abs() < 1e-12);
            }
        });
    }

    #[test]
    fn prolong_scatters_to_collocated_points() {
        let p = assemble(&spec(ProcGrid::new(1, 1, 1), 4, 2), 0);
        let l = &p.levels[0];
        let mut stats = MotifStats::new();
        let map = l.c2f.as_ref().unwrap();
        let zc: Vec<f64> = (0..map.n_coarse).map(|i| i as f64 + 1.0).collect();
        let mut z = vec![0.0f64; l.vec_len()];
        prolong_add(l, &mut stats, &zc, &mut z);
        let total: f64 = z.iter().sum();
        assert_eq!(total, (1..=map.n_coarse as u64).sum::<u64>() as f64);
        assert!(stats.flops(Motif::Prolongation) > 0.0);
    }

    #[test]
    fn dist_dot_reduces_across_ranks() {
        let results = run_spmd(4, |c| {
            let mut stats = MotifStats::new();
            let x = vec![1.0f64; 10];
            let y = vec![c.rank() as f64; 10];
            dist_dot(&c, &mut stats, Motif::Dot, &x, &y)
        });
        // sum over ranks of 10*rank = 10*(0+1+2+3) = 60.
        for v in results {
            assert_eq!(v, 60.0);
        }
    }

    #[test]
    fn dist_norm_single_rank() {
        let c = SelfComm;
        let mut stats = MotifStats::new();
        let x = vec![3.0f32, 4.0];
        let n = dist_norm2(&c, &mut stats, Motif::Dot, &x);
        assert!((n - 5.0).abs() < 1e-6);
        let (_octx, _tl) = ctx(&c, ImplVariant::Optimized);
    }

    #[test]
    fn vector_ops_record_motifs() {
        let mut stats = MotifStats::new();
        let x = vec![1.0f64; 8];
        let y = vec![2.0f64; 8];
        let mut w = vec![0.0f64; 8];
        waxpby_op(&mut stats, 2.0, &x, 1.0, &y, &mut w);
        assert_eq!(w[0], 4.0);
        axpy_op(&mut stats, -1.0, &x, &mut w);
        assert_eq!(w[0], 3.0);
        let x32 = vec![0.5f32; 8];
        let mut y64 = vec![0.0f64; 8];
        axpy_lo_mixed_op(&mut stats, 2.0, &x32, &mut y64);
        assert_eq!(y64[0], 1.0);
        assert!(stats.flops(Motif::Waxpby) > 0.0);
    }
}
