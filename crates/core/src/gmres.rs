//! Restarted right-preconditioned GMRES — Algorithm 2 of the paper —
//! and the generic restart cycle shared with the mixed-precision
//! GMRES-IR solver.
//!
//! The restart cycle is written once, generic over the working
//! precision `S`. Instantiated at `f64` it is the benchmark's
//! double-precision reference solver; driven by the `f64` outer loop of
//! [`crate::gmres_ir`] at `S = f32` it is the low-precision inner solve
//! of GMRES-IR (Algorithm 3's blue region). This mirrors the benchmark
//! design: GMRES-IR *is* restarted GMRES whose restart acts as the
//! iterative-refinement step, with residual and solution updates kept
//! in double.

use crate::config::ImplVariant;
use crate::givens::GivensQr;
use crate::mg::{apply_mg_checked, MgWorkspace, SmootherKind};
use crate::motifs::{Motif, MotifStats};
use crate::ops::{axpy_op, dist_norm2, dist_spmv, dist_spmv_checked, waxpby_op, OpCtx};
use crate::ortho::{cgs2_checked, mgs_checked};
use crate::problem::{Level, LocalProblem};
use hpgmxp_comm::{Comm, CommResult, Timeline};
use hpgmxp_sparse::blas::Basis;
use hpgmxp_sparse::Scalar;
use serde::{Deserialize, Serialize};

/// Which orthogonalization the Arnoldi process uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum OrthoMethod {
    /// Classical Gram-Schmidt with full reorthogonalization — the
    /// benchmark's prescription (blocked inner products, two
    /// all-reduces per iteration, robust orthogonality).
    Cgs2,
    /// Modified Gram-Schmidt — the classical alternative §3 discusses:
    /// one all-reduce per basis vector (k per iteration), provided for
    /// the communication-cost ablation.
    Mgs,
}

/// Solver configuration.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct GmresOptions {
    /// Restart length `m` (Table 1: 30).
    pub restart: usize,
    /// Total inner-iteration budget.
    pub max_iters: usize,
    /// Relative residual tolerance `‖b − Ax‖ / ‖b‖`.
    pub tol: f64,
    /// Implementation variant (optimized vs reference data paths).
    pub variant: ImplVariant,
    /// Pre-smoother sweeps in the V-cycle.
    pub pre_smooth: usize,
    /// Post-smoother sweeps in the V-cycle.
    pub post_smooth: usize,
    /// Apply the multigrid preconditioner (`false` = unpreconditioned,
    /// for ablation).
    pub precondition: bool,
    /// Orthogonalization method (benchmark: CGS2).
    pub ortho: OrthoMethod,
    /// Record the per-restart explicit residual history.
    pub track_history: bool,
}

impl Default for GmresOptions {
    fn default() -> Self {
        GmresOptions {
            restart: 30,
            max_iters: 300,
            tol: 1e-9,
            variant: ImplVariant::Optimized,
            pre_smooth: 1,
            post_smooth: 1,
            precondition: true,
            ortho: OrthoMethod::Cgs2,
            track_history: false,
        }
    }
}

/// Outcome of a solve.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SolveStats {
    /// Inner (Arnoldi) iterations performed.
    pub iters: usize,
    /// Restart cycles (= outer residual evaluations − 1).
    pub restarts: usize,
    /// Whether the relative tolerance was met.
    pub converged: bool,
    /// Final explicit relative residual `‖b − Ax‖ / ‖b‖`.
    pub final_relres: f64,
    /// Explicit relative residuals at each restart (if tracked).
    pub history: Vec<f64>,
    /// Per-motif time and FLOP accounting for this rank.
    pub motifs: MotifStats,
    /// Measured halo-overlap efficiency over the solve (fraction of
    /// communication hidden under interior compute), when the run's
    /// timeline was enabled; `None` on untraced runs.
    pub overlap_efficiency: Option<f64>,
}

/// Workspace reused across restart cycles of one solve.
pub(crate) struct CycleWorkspace<S: Scalar> {
    basis: Basis<S>,
    /// Preconditioner output / SpMV input (owned + ghosts).
    zv: Vec<S>,
    /// Scratch for the basis combination `Q t`.
    combined: Vec<S>,
    mg: MgWorkspace<S>,
    qr: GivensQr,
}

impl<S: Scalar> CycleWorkspace<S> {
    pub(crate) fn new(levels: &[Level], m: usize) -> Self {
        let n = levels[0].n_local();
        CycleWorkspace {
            basis: Basis::new(n, m + 1),
            zv: vec![S::ZERO; levels[0].vec_len()],
            combined: vec![S::ZERO; n],
            mg: MgWorkspace::new(levels),
            qr: GivensQr::new(m),
        }
    }
}

/// Result of one restart cycle.
pub(crate) struct CycleOutcome<S> {
    /// Solution update `M⁻¹ Q y` (owned entries, working precision).
    pub update: Vec<S>,
    /// Inner iterations performed in this cycle.
    pub iters: usize,
}

/// Run one restart cycle of right-preconditioned GMRES in precision `S`.
///
/// `r_unit` is the unit-norm outer residual (owned entries), `rho` its
/// norm, `rho0` the reference norm for the relative tolerance.
#[allow(clippy::too_many_arguments)]
pub(crate) fn gmres_cycle<S: Scalar, C: Comm>(
    ctx: &OpCtx<C>,
    prob: &LocalProblem,
    stats: &mut MotifStats,
    ws: &mut CycleWorkspace<S>,
    opts: &GmresOptions,
    r_unit: &[S],
    rho: f64,
    rho0: f64,
    iter_budget: usize,
) -> CommResult<CycleOutcome<S>> {
    let levels = &prob.levels[..];
    let n = levels[0].n_local();
    let m = opts.restart;

    ws.basis.col_mut(0).copy_from_slice(&r_unit[..n]);
    ws.qr.reset(rho);

    let mut k = 0usize;
    while k < m && k < iter_budget {
        // z ← M⁻¹ q_k (the preconditioner application, line 18).
        if opts.precondition {
            apply_mg_checked(
                ctx,
                levels,
                stats,
                &mut ws.mg,
                opts.pre_smooth,
                opts.post_smooth,
                SmootherKind::Forward,
                ws.basis.col(k),
                &mut ws.zv,
            )?;
        } else {
            ws.zv[..n].copy_from_slice(ws.basis.col(k));
        }

        // q_{k+1} ← A z (line 19). The SpMV refreshes zv's ghosts.
        {
            // Split borrow: zv and the new basis column are disjoint.
            let (zv, basis) = (&mut ws.zv, &mut ws.basis);
            dist_spmv_checked(ctx, &levels[0], stats, 0, zv, basis.col_mut(k + 1))?;
        }

        // Orthogonalize against columns 0..=k (lines 20–27).
        let ortho = match opts.ortho {
            OrthoMethod::Cgs2 => cgs2_checked(ctx.comm, stats, &mut ws.basis, k + 1)?,
            OrthoMethod::Mgs => mgs_checked(ctx.comm, stats, &mut ws.basis, k + 1)?,
        };

        // Givens update (lines 31–43), redundantly on every rank.
        let rho_est = stats.timed(Motif::Ortho, crate::flops::givens_update(k + 1), || {
            ws.qr.push_column(&ortho.h, ortho.beta)
        });
        k += 1;

        if ortho.breakdown || rho_est / rho0 < opts.tol {
            break;
        }
    }

    // Solution update: t ← H⁻¹t, r ← Q t, update ← M⁻¹ r (lines 45–47).
    let y = stats.timed(Motif::Ortho, crate::flops::hessenberg_solve(k), || ws.qr.solve_y());
    let y_s: Vec<S> = y.iter().map(|&v| S::from_f64(v)).collect();
    stats.timed(Motif::Ortho, crate::flops::basis_combine(n, k), || {
        ws.basis.combine(k, &y_s, &mut ws.combined)
    });

    let mut update = vec![S::ZERO; n];
    if opts.precondition {
        apply_mg_checked(
            ctx,
            levels,
            stats,
            &mut ws.mg,
            opts.pre_smooth,
            opts.post_smooth,
            SmootherKind::Forward,
            &ws.combined,
            &mut update,
        )?;
    } else {
        update.copy_from_slice(&ws.combined);
    }

    Ok(CycleOutcome { update, iters: k })
}

/// Solve `A x = b` with double-precision restarted GMRES (Algorithm 2;
/// the benchmark's "double" phase). Starts from a zero initial guess
/// and returns the owned solution entries plus statistics.
pub fn gmres_solve_f64<C: Comm>(
    comm: &C,
    prob: &LocalProblem,
    opts: &GmresOptions,
    timeline: &Timeline,
) -> (Vec<f64>, SolveStats) {
    let ctx = OpCtx::new(comm, opts.variant, timeline);
    let mut stats = MotifStats::new();
    let levels = &prob.levels[..];
    let n = levels[0].n_local();

    let mut x = vec![0.0f64; levels[0].vec_len()];
    let mut ax = vec![0.0f64; n];
    let mut r = vec![0.0f64; n];
    let mut r_unit = vec![0.0f64; n];
    let mut ws: CycleWorkspace<f64> = CycleWorkspace::new(levels, opts.restart);

    let rho0 = dist_norm2(comm, &mut stats, Motif::Dot, &prob.b);
    let mut history = Vec::new();
    let mut iters = 0usize;
    let mut restarts = 0usize;
    let mut relres;
    let mut converged = false;

    loop {
        // Explicit outer residual r = b − A x.
        dist_spmv(&ctx, &levels[0], &mut stats, 0, &mut x, &mut ax);
        waxpby_op(&mut stats, 1.0, &prob.b, -1.0, &ax, &mut r);
        let rho = dist_norm2(comm, &mut stats, Motif::Dot, &r);
        relres = if rho0 > 0.0 { rho / rho0 } else { 0.0 };
        if opts.track_history {
            history.push(relres);
        }
        if relres < opts.tol {
            converged = true;
            break;
        }
        if !rho.is_finite() {
            // The inner precision broke down (inf/NaN residual); no
            // further cycle can repair it. Report honestly.
            break;
        }
        if iters >= opts.max_iters {
            break;
        }

        for (u, v) in r_unit.iter_mut().zip(r.iter()) {
            *u = v / rho;
        }
        let outcome = gmres_cycle(
            &ctx,
            prob,
            &mut stats,
            &mut ws,
            opts,
            &r_unit,
            rho,
            rho0,
            opts.max_iters - iters,
        )
        .unwrap_or_else(|e| panic!("{e}"));
        iters += outcome.iters;
        restarts += 1;
        axpy_op(&mut stats, 1.0, &outcome.update, &mut x[..n]);
        if outcome.iters == 0 {
            break; // no progress possible (budget exhausted mid-cycle)
        }
    }

    let solution = x[..n].to_vec();
    (
        solution,
        SolveStats {
            iters,
            restarts,
            converged,
            final_relres: relres,
            history,
            motifs: stats,
            overlap_efficiency: timeline.overlap_efficiency(),
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{assemble, ProblemSpec};
    use hpgmxp_comm::{run_spmd, SelfComm};
    use hpgmxp_geometry::{ProcGrid, Stencil27};

    fn spec(procs: ProcGrid, n: u32, levels: usize) -> ProblemSpec {
        ProblemSpec {
            local: (n, n, n),
            procs,
            stencil: Stencil27::symmetric(),
            mg_levels: levels,
            seed: 11,
        }
    }

    #[test]
    fn converges_on_single_rank_to_nine_orders() {
        let prob = assemble(&spec(ProcGrid::new(1, 1, 1), 16, 4), 0);
        let tl = Timeline::disabled();
        let opts = GmresOptions { max_iters: 500, track_history: true, ..Default::default() };
        let (x, st) = gmres_solve_f64(&SelfComm, &prob, &opts, &tl);
        assert!(st.converged, "relres = {}", st.final_relres);
        assert!(st.final_relres < 1e-9);
        // Exact solution is all ones.
        for xi in &x {
            assert!((xi - 1.0).abs() < 1e-6, "{}", xi);
        }
        // History is monotonically nonincreasing at restart boundaries
        // (GMRES minimizes the residual over the Krylov space).
        for w in st.history.windows(2) {
            assert!(w[1] <= w[0] * (1.0 + 1e-12));
        }
    }

    #[test]
    fn preconditioner_gives_mesh_independent_convergence() {
        // The textbook multigrid property: MG-preconditioned iteration
        // counts stay (nearly) flat as the mesh refines, while the
        // unpreconditioned counts grow with the mesh diameter. This is
        // the right invariant at laptop sizes, where the 27-point
        // operator is easy enough that a fixed margin would be noise.
        let tl = Timeline::disabled();
        let with = GmresOptions { max_iters: 2000, tol: 1e-8, ..Default::default() };
        let without = GmresOptions { precondition: false, ..with };
        let iters = |n: u32, o: &GmresOptions| {
            let prob = assemble(&spec(ProcGrid::new(1, 1, 1), n, 2), 0);
            let (_, st) = gmres_solve_f64(&SelfComm, &prob, o, &tl);
            assert!(st.converged);
            st.iters
        };
        let (mg8, mg32) = (iters(8, &with), iters(32, &with));
        let (no8, no32) = (iters(8, &without), iters(32, &without));
        assert!(mg32 < no32, "MG must beat unpreconditioned: {} vs {}", mg32, no32);
        let mg_growth = mg32 as f64 / mg8 as f64;
        let no_growth = no32 as f64 / no8 as f64;
        assert!(
            mg_growth < 0.8 * no_growth,
            "MG growth {:.2} must be well below unpreconditioned growth {:.2} ({}→{} vs {}→{})",
            mg_growth,
            no_growth,
            mg8,
            mg32,
            no8,
            no32
        );
    }

    #[test]
    fn reference_variant_converges_identically_in_iterations() {
        // Reference and optimized differ in smoother ordering, so the
        // iteration counts may differ slightly — but both must converge.
        let prob = assemble(&spec(ProcGrid::new(1, 1, 1), 16, 2), 0);
        let tl = Timeline::disabled();
        let o = GmresOptions { max_iters: 400, ..Default::default() };
        let r = GmresOptions { variant: ImplVariant::Reference, ..o };
        let (_, st_o) = gmres_solve_f64(&SelfComm, &prob, &o, &tl);
        let (_, st_r) = gmres_solve_f64(&SelfComm, &prob, &r, &tl);
        assert!(st_o.converged && st_r.converged);
        let ratio = st_o.iters as f64 / st_r.iters as f64;
        assert!((0.5..=2.0).contains(&ratio), "{} vs {}", st_o.iters, st_r.iters);
    }

    #[test]
    fn distributed_solve_matches_serial_iteration_count() {
        // The same global problem solved on 1 and on 2 ranks must take
        // (nearly) the same iterations; coloring differences across the
        // decomposition allow ±a few.
        let tl_iters = {
            let prob = assemble(
                &ProblemSpec {
                    local: (16, 8, 8),
                    procs: ProcGrid::new(1, 1, 1),
                    stencil: Stencil27::symmetric(),
                    mg_levels: 3,
                    seed: 11,
                },
                0,
            );
            let tl = Timeline::disabled();
            let (_, st) = gmres_solve_f64(&SelfComm, &prob, &GmresOptions::default(), &tl);
            assert!(st.converged);
            st.iters
        };

        let procs = ProcGrid::new(2, 1, 1);
        let results = run_spmd(2, move |c| {
            let prob = assemble(&spec(procs, 8, 3), c.rank());
            let tl = Timeline::disabled();
            let (_, st) = gmres_solve_f64(&c, &prob, &GmresOptions::default(), &tl);
            (st.iters, st.converged)
        });
        for (iters, conv) in results {
            assert!(conv);
            let diff = (iters as i64 - tl_iters as i64).abs();
            assert!(diff <= 6, "serial {} vs distributed {}", tl_iters, iters);
        }
    }

    #[test]
    fn mgs_variant_converges_like_cgs2() {
        // The ablation §3 motivates: MGS trades blocked reductions for
        // per-vector ones; numerically both must solve the problem in a
        // comparable iteration count.
        let prob = assemble(&spec(ProcGrid::new(1, 1, 1), 16, 3), 0);
        let tl = Timeline::disabled();
        let cgs2_opts = GmresOptions { max_iters: 500, ..Default::default() };
        let mgs_opts = GmresOptions { ortho: OrthoMethod::Mgs, ..cgs2_opts };
        let (_, st_c) = gmres_solve_f64(&SelfComm, &prob, &cgs2_opts, &tl);
        let (_, st_m) = gmres_solve_f64(&SelfComm, &prob, &mgs_opts, &tl);
        assert!(st_c.converged && st_m.converged);
        assert!(
            (st_c.iters as i64 - st_m.iters as i64).abs() <= 3,
            "CGS2 {} vs MGS {}",
            st_c.iters,
            st_m.iters
        );
    }

    #[test]
    fn respects_iteration_budget() {
        let prob = assemble(&spec(ProcGrid::new(1, 1, 1), 16, 4), 0);
        let tl = Timeline::disabled();
        let opts = GmresOptions { max_iters: 7, tol: 1e-30, ..Default::default() };
        let (_, st) = gmres_solve_f64(&SelfComm, &prob, &opts, &tl);
        assert!(!st.converged);
        assert!(st.iters <= 7, "budget exceeded: {}", st.iters);
    }

    #[test]
    fn motif_accounting_covers_all_solver_phases() {
        let prob = assemble(&spec(ProcGrid::new(1, 1, 1), 16, 4), 0);
        let tl = Timeline::disabled();
        let (_, st) = gmres_solve_f64(&SelfComm, &prob, &GmresOptions::default(), &tl);
        for motif in [
            Motif::GaussSeidel,
            Motif::SpMV,
            Motif::Ortho,
            Motif::Restriction,
            Motif::Prolongation,
            Motif::Dot,
            Motif::Waxpby,
        ] {
            assert!(st.motifs.flops(motif) > 0.0, "missing flops for {:?}", motif);
        }
        // GS dominates the FLOP profile, as in the paper's figure 7.
        assert!(st.motifs.flops(Motif::GaussSeidel) > st.motifs.flops(Motif::SpMV));
    }
}
