//! Matrix-free application of the benchmark operator.
//!
//! The paper's conclusion notes that GMRES-IR's extra memory cost (a
//! low-precision *copy* of the matrix) disappears for applications
//! that use matrix-free GMRES (its reference 30): the fine-grid operator
//! is applied straight from the stencil, and **only the low-precision
//! matrix needs to be stored** for the multigrid preconditioner. This
//! module implements that configuration: a [`StencilOperator`] that
//! computes `y = A x` directly from the 27-point stencil geometry —
//! bit-identical to the assembled SpMV because it enumerates the
//! couplings in the same order — plus a GMRES-IR driver arrangement
//! where the f64 outer SpMV is matrix-free.
//!
//! Memory effect (quantified in `hpgmxp_machine::memory`): the f64 CSR
//! copy of a 320³ local problem is ~9.5 GB of the 64 GB HBM; dropping
//! it lets the mixed solver run *larger* local problems than stored
//! double-precision GMRES, reversing the conclusion's capacity
//! concern.

use crate::motifs::{Motif, MotifStats};
use crate::ops::OpCtx;
use crate::problem::Level;
use hpgmxp_comm::{Comm, Stream};
use hpgmxp_geometry::{LocalGrid, Stencil27, STENCIL_OFFSETS};
use hpgmxp_sparse::Scalar;
use std::time::Instant;

/// The 27-point benchmark operator, applied from geometry (no stored
/// matrix).
#[derive(Debug, Clone)]
pub struct StencilOperator {
    grid: LocalGrid,
    stencil: Stencil27,
    /// Per stencil offset: the local-index displacement when the
    /// neighbor is inside the local box (x-fastest layout).
    strides: [i64; 27],
}

impl StencilOperator {
    /// Build the operator for one rank's local grid.
    pub fn new(grid: LocalGrid, stencil: Stencil27) -> Self {
        let mut strides = [0i64; 27];
        for (k, &(dx, dy, dz)) in STENCIL_OFFSETS.iter().enumerate() {
            strides[k] = dx as i64 + grid.nx as i64 * (dy as i64 + grid.ny as i64 * dz as i64);
        }
        StencilOperator { grid, stencil, strides }
    }

    /// Owned rows.
    pub fn nrows(&self) -> usize {
        self.grid.total_points()
    }

    /// `y = A x` for the owned rows; `x` must carry current ghosts
    /// (same layout as the assembled path, so the same halo exchange
    /// applies). Couplings are accumulated in `STENCIL_OFFSETS` order —
    /// the assembly order — so results match the assembled CSR SpMV
    /// bit for bit.
    pub fn apply<S: Scalar>(&self, level: &Level, x: &[S], y: &mut [S]) {
        let g = self.grid;
        let global = g.global();
        let (nx, ny, nz) = (g.nx as i64, g.ny as i64, g.nz as i64);
        let mut row = 0usize;
        for iz in 0..nz {
            for iy in 0..ny {
                for ix in 0..nx {
                    let (gx, gy, gz) = g.to_global(ix as u32, iy as u32, iz as u32);
                    let mut acc = S::ZERO;
                    for (k, &(dx, dy, dz)) in STENCIL_OFFSETS.iter().enumerate() {
                        let (ngx, ngy, ngz) =
                            (gx as i64 + dx as i64, gy as i64 + dy as i64, gz as i64 + dz as i64);
                        if !global.contains(ngx, ngy, ngz) {
                            continue;
                        }
                        let (ex, ey, ez) = (ix + dx as i64, iy + dy as i64, iz + dz as i64);
                        let xv = if ex >= 0 && ey >= 0 && ez >= 0 && ex < nx && ey < ny && ez < nz {
                            x[(row as i64 + self.strides[k]) as usize]
                        } else {
                            let gi = level
                                .halo
                                .plan()
                                .ghost_index(ex, ey, ez)
                                .expect("off-rank in-domain point has a ghost slot");
                            x[self.nrows() + gi]
                        };
                        let c = S::from_f64(self.stencil.coefficient(dx, dy, dz));
                        acc = c.mul_add(xv, acc);
                    }
                    y[row] = acc;
                    row += 1;
                }
            }
        }
    }

    /// FLOPs of one application (same count as the assembled SpMV).
    pub fn apply_flops(&self, level: &Level) -> f64 {
        crate::flops::spmv(level.nnz())
    }
}

/// Distributed matrix-free `y = A x` with halo exchange (blocking; the
/// operator walks all rows, so the split-phase overlap of the stored
/// path would need a row-order-aware walker — future work here too).
pub fn dist_spmv_matrix_free<S: Scalar, C: Comm>(
    ctx: &OpCtx<C>,
    op: &StencilOperator,
    level: &Level,
    stats: &mut MotifStats,
    tag: u64,
    x: &mut [S],
    y: &mut [S],
) {
    let t0 = Instant::now();
    level.halo.exchange(ctx.comm, tag, x, ctx.timeline);
    {
        let _s = ctx.timeline.span("SpMV (matrix-free)", Stream::Compute);
        op.apply(level, x, y);
    }
    stats.record(Motif::SpMV, t0.elapsed().as_secs_f64(), op.apply_flops(level));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ImplVariant;
    use crate::problem::{assemble, ProblemSpec};
    use hpgmxp_comm::{run_spmd, SelfComm, Timeline};
    use hpgmxp_geometry::ProcGrid;

    fn spec(procs: ProcGrid, n: u32) -> ProblemSpec {
        ProblemSpec {
            local: (n, n, n),
            procs,
            stencil: Stencil27::symmetric(),
            mg_levels: 1,
            seed: 3,
        }
    }

    #[test]
    fn matches_assembled_spmv_bitwise_serial() {
        let p = assemble(&spec(ProcGrid::new(1, 1, 1), 8), 0);
        let l = &p.levels[0];
        let op = StencilOperator::new(l.grid, p.spec.stencil);
        let x: Vec<f64> = (0..l.vec_len()).map(|i| (i as f64 * 0.013).sin()).collect();
        let mut y_mf = vec![0.0f64; l.n_local()];
        op.apply(l, &x, &mut y_mf);
        let mut y_csr = vec![0.0f64; l.n_local()];
        l.csr64().spmv(&x, &mut y_csr);
        assert_eq!(y_mf, y_csr, "same coupling order => bitwise equality");
    }

    #[test]
    fn matches_assembled_spmv_distributed() {
        let procs = ProcGrid::new(2, 2, 1);
        run_spmd(4, move |c| {
            let p = assemble(&spec(procs, 4), c.rank());
            let l = &p.levels[0];
            let op = StencilOperator::new(l.grid, p.spec.stencil);
            let tl = Timeline::disabled();
            let ctx = OpCtx::new(&c, ImplVariant::Optimized, &tl);
            let mut stats = MotifStats::new();
            let mut x: Vec<f64> =
                (0..l.vec_len()).map(|i| ((i + c.rank() * 7) as f64).cos()).collect();

            let mut y_mf = vec![0.0f64; l.n_local()];
            dist_spmv_matrix_free(&ctx, &op, l, &mut stats, 0, &mut x, &mut y_mf);

            let mut y_csr = vec![0.0f64; l.n_local()];
            l.csr64().spmv(&x, &mut y_csr); // ghosts already fresh
            assert_eq!(y_mf, y_csr);
        });
    }

    #[test]
    fn works_at_low_precision() {
        let p = assemble(&spec(ProcGrid::new(1, 1, 1), 4), 0);
        let l = &p.levels[0];
        let op = StencilOperator::new(l.grid, p.spec.stencil);
        let x: Vec<f32> = (0..l.vec_len()).map(|i| (i % 5) as f32).collect();
        let mut y_mf = vec![0.0f32; l.n_local()];
        op.apply(l, &x, &mut y_mf);
        let mut y_csr = vec![0.0f32; l.n_local()];
        l.csr32().spmv(&x, &mut y_csr);
        assert_eq!(y_mf, y_csr);
    }

    #[test]
    fn nonsymmetric_stencil_supported() {
        let spec = ProblemSpec {
            local: (4, 4, 4),
            procs: ProcGrid::new(1, 1, 1),
            stencil: Stencil27::nonsymmetric(0.5),
            mg_levels: 1,
            seed: 3,
        };
        let p = assemble(&spec, 0);
        let l = &p.levels[0];
        let op = StencilOperator::new(l.grid, spec.stencil);
        let x: Vec<f64> = (0..l.vec_len()).map(|i| i as f64).collect();
        let mut y_mf = vec![0.0f64; l.n_local()];
        op.apply(l, &x, &mut y_mf);
        let mut y_csr = vec![0.0f64; l.n_local()];
        l.csr64().spmv(&x, &mut y_csr);
        assert_eq!(y_mf, y_csr);
    }

    #[test]
    fn flop_count_matches_assembled() {
        let p = assemble(&spec(ProcGrid::new(1, 1, 1), 6), 0);
        let l = &p.levels[0];
        let op = StencilOperator::new(l.grid, p.spec.stencil);
        assert_eq!(op.apply_flops(l), crate::flops::spmv(l.nnz()));
        let _ = SelfComm; // silence unused import in some cfgs
    }
}
