//! Smoother and ordering study: the §3.2.1 design space, measured.
//!
//! Compares the orderings the paper discusses — lexicographic
//! (sequential), level-scheduled (the reference implementation's
//! parallelism), JPL multicolor (the optimized implementation's), and
//! RCM — on coloring quality, exposed parallelism, and the effect on
//! GMRES convergence.
//!
//! Run: `cargo run --release --example smoother_study`

use hpg_mxp::comm::{SelfComm, Timeline};
use hpg_mxp::core::gmres::{gmres_solve_f64, GmresOptions};
use hpg_mxp::core::problem::{assemble, ProblemSpec};
use hpg_mxp::geometry::{ProcGrid, Stencil27};
use hpg_mxp::sparse::ordering::bandwidth;
use hpg_mxp::sparse::ordering::rcm_order;
use hpg_mxp::sparse::{greedy_coloring, jpl_coloring, LevelSchedule};

fn main() {
    let spec = ProblemSpec {
        local: (16, 16, 16),
        procs: ProcGrid::new(1, 1, 1),
        stencil: Stencil27::symmetric(),
        mg_levels: 4,
        seed: 7,
    };
    let problem = assemble(&spec, 0);
    let a = &problem.levels[0].csr64();
    let n = a.nrows();

    println!("operator: {} rows, {} nonzeros (27-point stencil, 16^3)\n", n, a.nnz());

    // 1. Parallelism exposed by each strategy.
    let schedule = LevelSchedule::build(a);
    println!("level scheduling (reference GS parallelism):");
    println!(
        "   {} dependency levels, mean {:.1} rows/level ({:.1}% of the matrix per step)",
        schedule.num_levels(),
        schedule.mean_parallelism(),
        schedule.mean_parallelism() / n as f64 * 100.0
    );

    let jpl = jpl_coloring(a, 42);
    let greedy = greedy_coloring(a);
    println!("multicoloring (optimized GS parallelism):");
    println!(
        "   JPL:    {} colors, largest class {} rows ({:.1}% of the matrix per step)",
        jpl.num_colors,
        jpl.max_class_size(),
        n as f64 / jpl.num_colors as f64 / n as f64 * 100.0
    );
    println!("   greedy: {} colors (the 2x2x2 parity optimum is 8)", greedy.num_colors);

    // 2. RCM, the convergence-friendly ordering the paper cites.
    let rcm = rcm_order(a);
    let a_rcm = a.symmetric_permute(&rcm);
    println!("\nbandwidth: natural {} vs RCM {}", bandwidth(a), bandwidth(&a_rcm));

    // 3. Convergence effect: multicolor (optimized) vs lexicographic
    // (reference) smoother ordering inside the full solver.
    let tl = Timeline::disabled();
    let opts = GmresOptions { tol: 1e-9, max_iters: 500, ..Default::default() };
    let (_, st_mc) = gmres_solve_f64(&SelfComm, &problem, &opts, &tl);
    let ref_opts = GmresOptions { variant: hpg_mxp::core::config::ImplVariant::Reference, ..opts };
    let (_, st_lex) = gmres_solve_f64(&SelfComm, &problem, &ref_opts, &tl);
    println!("\nGMRES iterations to 1e-9:");
    println!("   multicolor smoother (optimized):     {}", st_mc.iters);
    println!("   lexicographic smoother (reference):  {}", st_lex.iters);
    println!(
        "   -> the convergence cost of multicoloring at this size: {:+} iterations",
        st_mc.iters as i64 - st_lex.iters as i64
    );
    println!("   (§3.2.1: \"convergence rate sometimes suffers ... less of an issue within a multigrid preconditioner\")");
}
