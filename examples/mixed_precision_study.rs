//! Measured mixed-precision study on this machine: time every motif's
//! real kernel in f64 and f32 and report the speedups — the
//! workstation-scale analog of the paper's figure 5, produced from
//! actual kernel executions rather than the machine model.
//!
//! Run: `cargo run --release --example mixed_precision_study`

use hpg_mxp::core::problem::{assemble, ProblemSpec};
use hpg_mxp::geometry::{ProcGrid, Stencil27};
use hpg_mxp::sparse::blas::{self, Basis};
use hpg_mxp::sparse::gauss_seidel::gs_multicolor;
use hpg_mxp::sparse::{CsrMatrix, EllMatrix};
use std::hint::black_box;
use std::time::Instant;

/// Median-of-5 wall time of repeated executions of `f`.
fn time_it(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut samples = Vec::with_capacity(5);
    for _ in 0..5 {
        let t0 = Instant::now();
        for _ in 0..reps {
            f();
        }
        samples.push(t0.elapsed().as_secs_f64() / reps as f64);
    }
    samples.sort_by(f64::total_cmp);
    samples[2]
}

fn main() {
    let n_edge = 48u32;
    let spec = ProblemSpec {
        local: (n_edge, n_edge, n_edge),
        procs: ProcGrid::new(1, 1, 1),
        stencil: Stencil27::symmetric(),
        mg_levels: 1,
        seed: 3,
    };
    let problem = assemble(&spec, 0);
    let l = &problem.levels[0];
    let n = l.n_local();
    println!("measured f64 -> f32 kernel speedups, {}^3 ({} rows):\n", n_edge, n);

    let csr32: CsrMatrix<f32> = l.csr64().convert();
    let ell32: EllMatrix<f32> = l.ell64().convert();
    let x64: Vec<f64> = (0..l.vec_len()).map(|i| (i as f64 * 1e-3).sin()).collect();
    let x32: Vec<f32> = x64.iter().map(|&v| v as f32).collect();
    let r64: Vec<f64> = (0..n).map(|i| (i % 17) as f64).collect();
    let r32: Vec<f32> = r64.iter().map(|&v| v as f32).collect();

    let mut results: Vec<(&str, f64, f64)> = Vec::new();

    // SpMV (ELL, the optimized format).
    let mut y64 = vec![0.0f64; n];
    let t64 = time_it(5, || l.ell64().spmv(black_box(&x64), &mut y64));
    let mut y32 = vec![0.0f32; n];
    let t32 = time_it(5, || ell32.spmv(black_box(&x32), &mut y32));
    results.push(("SpMV (ELL)", t64, t32));

    // SpMV (CSR, the reference format).
    let t64 = time_it(5, || l.csr64().spmv(black_box(&x64), &mut y64));
    let t32 = time_it(5, || csr32.spmv(black_box(&x32), &mut y32));
    results.push(("SpMV (CSR)", t64, t32));

    // Multicolor Gauss–Seidel sweep.
    let mut z64 = vec![0.0f64; l.vec_len()];
    let t64 = time_it(5, || gs_multicolor(l.ell64(), &l.coloring, black_box(&r64), &mut z64));
    let mut z32 = vec![0.0f32; l.vec_len()];
    let t32 = time_it(5, || gs_multicolor(&ell32, &l.coloring, black_box(&r32), &mut z32));
    results.push(("GS sweep (multicolor)", t64, t32));

    // CGS2's GEMV-T over 15 basis vectors.
    let k = 15;
    let mut q64: Basis<f64> = Basis::new(n, k + 1);
    let mut q32: Basis<f32> = Basis::new(n, k + 1);
    for j in 0..=k {
        for (i, v) in q64.col_mut(j).iter_mut().enumerate() {
            *v = ((i + j) as f64 * 1e-3).cos();
        }
        for (i, v) in q32.col_mut(j).iter_mut().enumerate() {
            *v = ((i + j) as f32 * 1e-3).cos();
        }
    }
    let t64 = time_it(5, || {
        black_box(q64.project_local(k));
    });
    let t32 = time_it(5, || {
        black_box(q32.project_local(k));
    });
    results.push(("Ortho GEMV-T (k=15)", t64, t32));

    // DOT and WAXPBY.
    let t64 = time_it(20, || {
        black_box(blas::dot(&x64[..n], &r64));
    });
    let t32 = time_it(20, || {
        black_box(blas::dot(&x32[..n], &r32));
    });
    results.push(("DOT", t64, t32));

    let mut w64 = vec![0.0f64; n];
    let mut w32 = vec![0.0f32; n];
    let t64 = time_it(20, || blas::waxpby(1.5, &x64[..n], 0.5, &r64, &mut w64));
    let t32 = time_it(20, || blas::waxpby(1.5f32, &x32[..n], 0.5, &r32, &mut w32));
    results.push(("WAXPBY", t64, t32));

    println!("{:<24} {:>12} {:>12} {:>9}", "kernel", "f64 (ms)", "f32 (ms)", "speedup");
    for (name, t64, t32) in &results {
        println!("{:<24} {:>12.3} {:>12.3} {:>8.2}x", name, t64 * 1e3, t32 * 1e3, t64 / t32);
    }
    println!("\n(paper, figure 5: ortho ~2x, GS/SpMV 1.4-1.6x — index arrays don't shrink with precision;");
    println!(" absolute ratios here depend on this CPU's cache hierarchy, the *ordering* is the shape target)");
}
