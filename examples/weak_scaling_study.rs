//! What-if study on the Frontier machine model: how do local problem
//! size, restart length, and implementation variant move the
//! weak-scaling curve and the mixed-precision speedup?
//!
//! This goes beyond the paper's figures: it explores the design space
//! the benchmark opens up (the paper's conclusion argues this is the
//! benchmark's purpose).
//!
//! Run: `cargo run --release --example weak_scaling_study`

use hpg_mxp::core::config::ImplVariant;
use hpg_mxp::machine::simulate::{motif_speedups, simulate, SimConfig};
use hpg_mxp::machine::{MachineModel, NetworkModel};

fn main() {
    let machine = MachineModel::mi250x_gcd();
    let net = NetworkModel::frontier_slingshot();

    // 1. Local problem size: smaller boxes expose the all-reduce and
    // halo latency sooner (surface/volume and comm/compute both worsen).
    println!("1. Weak-scaling efficiency (1 node -> 9408 nodes) vs local box size:");
    for n in [64u32, 128, 192, 320] {
        let cfg = SimConfig { local: (n, n, n), ..SimConfig::paper_mxp() };
        let one = simulate(&cfg, &machine, &net, 8);
        let full = simulate(&cfg, &machine, &net, 9408 * 8);
        println!(
            "   {:>4}^3/GCD: {:>6.1} GF/GCD at 1 node, {:>6.1} at full system  ({:.1}% efficiency)",
            n,
            one.gflops_per_rank,
            full.gflops_per_rank,
            full.gflops_per_rank / one.gflops_per_rank * 100.0
        );
    }

    // 2. Restart length: longer restarts mean more (and heavier) CGS2
    // passes per iteration — better flop rate, worse at scale.
    println!("\n2. Mixed-precision speedup vs restart length (512 nodes):");
    for m in [10usize, 30, 60, 100] {
        let cfg = SimConfig { restart: m, ..SimConfig::paper_mxp() };
        let sp = motif_speedups(&cfg, &machine, &net, 512 * 8);
        let total = sp.iter().find(|(l, _)| l == "Total").unwrap().1;
        let ortho = sp.iter().find(|(l, _)| l == "Ortho").unwrap().1;
        println!("   m = {:>3}: total {:.3}x, ortho {:.3}x", m, total, ortho);
    }

    // 3. Each §3.2 optimization, ablated via the reference variant.
    println!("\n3. Optimized vs reference implementation across scales (mixed, GF/GCD):");
    for nodes in [1usize, 64, 1024, 9408] {
        let ranks = nodes * 8;
        let opt = simulate(&SimConfig::paper_mxp(), &machine, &net, ranks);
        let xsdk = simulate(
            &SimConfig { variant: ImplVariant::Reference, ..SimConfig::paper_mxp() },
            &machine,
            &net,
            ranks,
        );
        println!(
            "   {:>5} nodes: optimized {:>6.1}, reference {:>5.1}  ({:.1}x)",
            nodes,
            opt.gflops_per_rank,
            xsdk.gflops_per_rank,
            opt.gflops_per_rank / xsdk.gflops_per_rank
        );
    }

    // 4. What would an all-f32 run buy (the 2x ceiling the paper cites)?
    println!("\n4. Speedup ceiling check (512 nodes): mixed vs double per motif:");
    for (label, v) in motif_speedups(&SimConfig::paper_mxp(), &machine, &net, 512 * 8) {
        println!("   {:<8} {:.3}x  (<= 2x bandwidth bound)", label, v);
    }
}
