//! Quickstart: assemble the benchmark problem, solve it with
//! mixed-precision GMRES-IR, and inspect the results.
//!
//! Run: `cargo run --release --example quickstart`

use hpg_mxp::comm::{SelfComm, Timeline};
use hpg_mxp::core::gmres::GmresOptions;
use hpg_mxp::core::gmres_ir::gmres_ir_solve;
use hpg_mxp::core::motifs::Motif;
use hpg_mxp::core::problem::{assemble, ProblemSpec};
use hpg_mxp::geometry::{ProcGrid, Stencil27};

fn main() {
    // A 32^3 Poisson-like problem (27-point stencil, diagonal 26,
    // off-diagonals -1) with the benchmark's 4-level geometric
    // multigrid hierarchy, on a single rank.
    let spec = ProblemSpec {
        local: (32, 32, 32),
        procs: ProcGrid::new(1, 1, 1),
        stencil: Stencil27::symmetric(),
        mg_levels: 4,
        seed: 7,
    };
    let problem = assemble(&spec, 0);
    println!(
        "problem: {} rows, {} nonzeros, {} multigrid levels, {} colors on the fine level",
        problem.n_local(),
        problem.levels[0].nnz(),
        problem.levels.len(),
        problem.levels[0].coloring.num_colors,
    );

    // Solve A x = b with mixed-precision GMRES-IR: all inner work in
    // f32, outer residual and solution updates in f64, converging nine
    // orders of magnitude — the defining feat of the benchmark.
    let opts =
        GmresOptions { tol: 1e-9, max_iters: 500, track_history: true, ..Default::default() };
    let timeline = Timeline::disabled();
    let (x, stats) = gmres_ir_solve(&SelfComm, &problem, &opts, &timeline);

    println!(
        "\nGMRES-IR: converged = {}, {} inner iterations in {} refinement cycles",
        stats.converged, stats.iters, stats.restarts
    );
    println!("relative residual: {:.3e}", stats.final_relres);
    println!(
        "residual history per refinement: {:?}",
        stats.history.iter().map(|r| format!("{:.1e}", r)).collect::<Vec<_>>()
    );

    // The exact solution is all ones.
    let max_err = x.iter().map(|xi| (xi - 1.0).abs()).fold(0.0f64, f64::max);
    println!("max error vs exact solution: {:.3e}", max_err);

    // Where did the time go? (the paper's figure 7 motifs)
    println!("\nper-motif accounting:");
    for m in Motif::ALL {
        let s = stats.motifs.seconds(m);
        if s > 0.0 {
            println!(
                "  {:<8} {:>9.2} ms   {:>8.2} GFLOP/s",
                m.label(),
                s * 1e3,
                stats.motifs.gflops(m)
            );
        }
    }
    println!(
        "  total    {:>9.2} ms   {:>8.2} GFLOP/s",
        stats.motifs.total_seconds() * 1e3,
        stats.motifs.total_gflops()
    );
}
