//! The paper's future work, executed: GMRES-IR with the entire inner
//! solve (Algorithm 3's blue region) at IEEE half precision.
//!
//! §5: "if one uses half precision strategically for parts of
//! operations in the blue region in algorithm 3, one can expect an
//! even higher speedup. This will be addressed in future work."
//!
//! Two questions, answered with this library:
//! 1. *Does it still converge?* — yes: real fp16 runs below reach the
//!    same 1e-9 relative residual, at a measurable extra iteration
//!    cost (the penalty the benchmark would charge).
//! 2. *What would it buy on Frontier?* — the machine model projects
//!    the bandwidth-side speedup of 2-byte values.
//!
//! Run: `cargo run --release --example half_precision_future`

use hpg_mxp::comm::{SelfComm, Timeline};
use hpg_mxp::core::gmres::{gmres_solve_f64, GmresOptions};
use hpg_mxp::core::gmres_ir::{gmres_ir_solve, gmres_ir_solve_fp16};
use hpg_mxp::core::problem::{assemble, ProblemSpec};
use hpg_mxp::geometry::{ProcGrid, Stencil27};
use hpg_mxp::machine::simulate::{simulate, SimConfig};
use hpg_mxp::machine::{MachineModel, NetworkModel};

fn main() {
    println!("Part 1 — real runs: inner-precision sweep on a 16^3 benchmark problem\n");
    let spec = ProblemSpec {
        local: (16, 16, 16),
        procs: ProcGrid::new(1, 1, 1),
        stencil: Stencil27::symmetric(),
        mg_levels: 4,
        seed: 7,
    };
    let prob = assemble(&spec, 0);
    let tl = Timeline::disabled();
    let opts = GmresOptions { max_iters: 5000, track_history: true, ..Default::default() };

    let (_, st64) = gmres_solve_f64(&SelfComm, &prob, &opts, &tl);
    let (_, st32) = gmres_ir_solve(&SelfComm, &prob, &opts, &tl);
    let (_, st16) = gmres_ir_solve_fp16(&SelfComm, &prob, &opts, &tl);

    println!(
        "{:<26} {:>8} {:>10} {:>14} {:>12}",
        "solver", "iters", "cycles", "final relres", "penalty"
    );
    for (name, st) in
        [("double GMRES", &st64), ("GMRES-IR (f32 inner)", &st32), ("GMRES-IR (fp16 inner)", &st16)]
    {
        println!(
            "{:<26} {:>8} {:>10} {:>14.2e} {:>12.3}",
            name,
            st.iters,
            st.restarts,
            st.final_relres,
            (st64.iters as f64 / st.iters as f64).min(1.0),
        );
        assert!(st.converged);
    }
    println!(
        "\nfp16 residual per refinement cycle: {:?}",
        st16.history.iter().map(|r| format!("{:.1e}", r)).collect::<Vec<_>>()
    );
    println!("-> each cycle gains ~3 digits (fp16 resolution), vs ~6 for f32: more cycles, same final accuracy.\n");

    println!("Part 2 — Frontier projection (machine model, 512 nodes):\n");
    let machine = MachineModel::mi250x_gcd();
    let net = NetworkModel::frontier_slingshot();
    let ranks = 512 * 8;
    let d = simulate(&SimConfig::paper_double(), &machine, &net, ranks);
    let f32c = simulate(&SimConfig::paper_mxp(), &machine, &net, ranks);
    // Project the fp16 penalty from the measured iteration ratio above.
    let fp16_penalty = (st64.iters as f64 / st16.iters as f64).min(1.0);
    let f16c = simulate(
        &SimConfig { penalty: fp16_penalty, ..SimConfig::paper_mxp_fp16() },
        &machine,
        &net,
        ranks,
    );
    println!("{:<26} {:>14} {:>22}", "configuration", "GF/GCD (raw)", "GF/GCD (penalized)");
    println!("{:<26} {:>14.1} {:>22.1}", "double", d.gflops_per_rank_raw, d.gflops_per_rank);
    println!(
        "{:<26} {:>14.1} {:>22.1}",
        "mixed f64/f32", f32c.gflops_per_rank_raw, f32c.gflops_per_rank
    );
    println!(
        "{:<26} {:>14.1} {:>22.1}",
        "mixed f64/fp16", f16c.gflops_per_rank_raw, f16c.gflops_per_rank
    );
    println!(
        "\nraw fp16 speedup over double: {:.2}x (f32: {:.2}x) — but the measured iteration penalty ({:.3})",
        f16c.gflops_per_rank_raw / d.gflops_per_rank_raw,
        f32c.gflops_per_rank_raw / d.gflops_per_rank_raw,
        fp16_penalty
    );
    println!(
        "leaves {:.2}x penalized vs f32's {:.2}x — whole-cycle fp16 only pays off if convergence holds,",
        f16c.gflops_per_rank / d.gflops_per_rank_raw,
        f32c.gflops_per_rank / d.gflops_per_rank_raw
    );
    println!("which is why the paper says *strategically* for *parts* of the blue region.");
}
