//! Run the complete HPG-MxP benchmark — validation, the timed
//! mixed-precision phase, and the double-precision reference phase —
//! on thread-ranks, and print the official-style report.
//!
//! Environment overrides: `HPGMXP_RANKS` (default 4),
//! `HPGMXP_LOCAL_N` (default 16), `HPGMXP_ITERS` (default 60).
//!
//! Run: `cargo run --release --example full_benchmark`

use hpg_mxp::core::benchmark::{run_benchmark, ValidationMode};
use hpg_mxp::core::config::{BenchmarkParams, ImplVariant};

fn env(name: &str, default: usize) -> usize {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn main() {
    let n = env("HPGMXP_LOCAL_N", 16) as u32;
    let ranks = env("HPGMXP_RANKS", 4);
    let params = BenchmarkParams {
        local_dims: (n, n, n),
        max_iters_per_solve: env("HPGMXP_ITERS", 60),
        validation_max_iters: 2000,
        ..Default::default()
    };

    println!(
        "HPG-MxP benchmark: {} thread-ranks, {}^3 points/rank ({} global rows)\n",
        ranks,
        n,
        (n as u64).pow(3) * ranks as u64
    );

    // The benchmark proper, with the standard (1-node-style) validation.
    let report = run_benchmark(&params, ImplVariant::Optimized, ranks, ValidationMode::Standard);
    println!("{}", report.to_text());
    println!("per-motif penalized speedups (figure 5 analog):");
    for (motif, s) in report.motif_speedups() {
        println!("  {:<8} {:.3}x", motif, s);
    }

    // The same run under the paper's new full-scale validation (§3.3).
    let fs = run_benchmark(&params, ImplVariant::Optimized, ranks, ValidationMode::FullScale);
    println!(
        "\nfull-scale validation: nd = {}, nir = {}, ratio = {:.3} (standard gave {:.3})",
        fs.validation.nd, fs.validation.nir, fs.validation.ratio, report.validation.ratio
    );

    // Machine-readable output for downstream tooling.
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write("benchmark_report.json", &json).ok();
    println!("\nfull report written to benchmark_report.json ({} bytes)", json.len());
}
